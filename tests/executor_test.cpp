// Tests of the process-wide decode executor (runtime layer): per-tenant
// FIFO ordering, round-robin dispatch across tenants, urgent
// front-of-queue submission, and tenant/executor lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace bgps::core {
namespace {

using namespace std::chrono_literals;

// Records task completions as "<tenant><index>" strings.
class CompletionLog {
 public:
  void Note(std::string id) {
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(std::move(id));
  }
  std::vector<std::string> Get() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }
  size_t IndexOf(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) return i;
    }
    return size_t(-1);
  }

 private:
  std::mutex mu_;
  std::vector<std::string> order_;
};

// Waits (bounded) until `pred` holds.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::seconds deadline = 10s) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(ExecutorTest, TenantTasksRunInSubmissionOrder) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  CompletionLog log;

  // Gate the worker so all tasks are queued before any runs.
  std::promise<void> gate;
  std::promise<void> gate_running;
  std::shared_future<void> opened = gate.get_future().share();
  tenant->Submit([opened, &gate_running] {
    gate_running.set_value();
    opened.wait();
  });
  gate_running.get_future().wait();  // the worker holds the gate task
  for (int i = 0; i < 8; ++i) {
    tenant->Submit([&log, i] { log.Note("t" + std::to_string(i)); });
  }
  EXPECT_EQ(tenant->queued(), 8u);
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 9; }));
  std::vector<std::string> expect;
  for (int i = 0; i < 8; ++i) expect.push_back("t" + std::to_string(i));
  EXPECT_EQ(log.Get(), expect);
}

TEST(ExecutorTest, RoundRobinDispatchInterleavesTenants) {
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto heavy = ex.CreateTenant();
  auto light = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  // A heavy tenant floods its queue; a light one submits a handful.
  // Round-robin means the light tenant's tasks cannot be starved behind
  // the flood: its k-th task completes within ~2k+2 completions.
  for (int i = 0; i < 24; ++i) {
    heavy->Submit([&log, i] { log.Note("h" + std::to_string(i)); });
  }
  for (int i = 0; i < 4; ++i) {
    light->Submit([&log, i] { log.Note("l" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 29; }));
  EXPECT_LT(log.IndexOf("l3"), 10u);
  // And FIFO holds within each tenant despite the interleave.
  EXPECT_LT(log.IndexOf("h0"), log.IndexOf("h1"));
  EXPECT_LT(log.IndexOf("l0"), log.IndexOf("l1"));
}

TEST(ExecutorTest, WeightedTenantDrainsProportionallyPerVisit) {
  // Deficit-weighted round-robin: a weight-4 tenant drains ~4 tasks per
  // visit of a weight-1 tenant. With one worker and both queues loaded
  // before the gate opens, the interleave is deterministic up to visit
  // boundaries: before the light tenant's k-th task completes, the
  // heavy tenant must have completed ~4(k+1) tasks (tolerance ±4, one
  // visit).
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto heavy = ex.CreateTenant({.weight = 4});
  auto light = ex.CreateTenant();  // weight 1
  EXPECT_EQ(heavy->weight(), 4u);
  EXPECT_EQ(light->weight(), 1u);
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  constexpr int kHeavy = 32, kLight = 8;
  for (int i = 0; i < kHeavy; ++i) {
    heavy->Submit([&log, i] { log.Note("h" + std::to_string(i)); });
  }
  for (int i = 0; i < kLight; ++i) {
    light->Submit([&log, i] { log.Note("l" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(
      WaitFor([&] { return ex.tasks_run() == 1 + kHeavy + kLight; }));

  std::vector<std::string> order = log.Get();
  for (int k = 0; k < kLight; ++k) {
    size_t pos = log.IndexOf("l" + std::to_string(k));
    ASSERT_NE(pos, size_t(-1));
    size_t heavies_before = 0;
    for (size_t i = 0; i < pos; ++i) {
      if (order[i][0] == 'h') ++heavies_before;
    }
    size_t want = size_t(4 * (k + 1));  // one full heavy visit per light task
    EXPECT_GE(heavies_before + 4, want) << "light task " << k;
    EXPECT_LE(heavies_before, want + 4) << "light task " << k;
  }
  // Per-tenant completion counters match.
  EXPECT_EQ(heavy->tasks_run(), size_t(kHeavy));
  EXPECT_EQ(light->tasks_run(), size_t(kLight));
  EXPECT_EQ(gate_tenant->tasks_run(), 1u);
}

TEST(ExecutorTest, SetWeightTakesEffectAtTheNextVisit) {
  // Re-weighting mid-flight: queue tasks under weight 1, bump to 3 —
  // tasks submitted after the bump drain 3-per-visit against a
  // competitor.
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto a = ex.CreateTenant();
  auto b = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  a->SetWeight(3);
  EXPECT_EQ(a->weight(), 3u);
  for (int i = 0; i < 9; ++i) {
    a->Submit([&log, i] { log.Note("a" + std::to_string(i)); });
  }
  for (int i = 0; i < 3; ++i) {
    b->Submit([&log, i] { log.Note("b" + std::to_string(i)); });
  }
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 13; }));
  // b0 cannot run before a's first full 3-task visit completed.
  EXPECT_GE(log.IndexOf("b0"), 3u);
  // And round-robin still guarantees b finishes well before a's flood.
  EXPECT_LT(log.IndexOf("b2"), 12u);
}

TEST(ExecutorTest, DispatchRoundsAdvanceWithRotations) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  size_t before = ex.dispatch_rounds();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    tenant->Submit([&ran] { ++ran; });
  }
  ASSERT_TRUE(WaitFor([&] { return ran.load() == 16; }));
  // A single weight-1 tenant forces a full rotation per task.
  EXPECT_GE(ex.dispatch_rounds(), before + 16);
}

TEST(ExecutorTest, IdleReclaimFiresAfterThresholdAndRearmsOnActivity) {
  Executor ex({.threads = 2});
  auto busy = ex.CreateTenant();
  auto idle = ex.CreateTenant();
  std::atomic<int> reclaimed{0};
  idle->SetIdleReclaim(3, [&reclaimed] { ++reclaimed; });

  // Other tenants' dispatch (or the idle tick) advances the round
  // clock; after >= 3 rounds without NoteActivity the callback fires —
  // exactly once until activity re-arms it.
  for (int i = 0; i < 64; ++i) busy->Submit([] {});
  ASSERT_TRUE(WaitFor([&] { return reclaimed.load() == 1; }));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(reclaimed.load(), 1);  // does not re-fire while still idle

  idle->NoteActivity();  // re-arm
  ASSERT_TRUE(WaitFor([&] { return reclaimed.load() == 2; }));

  // Clearing the policy stops further fires.
  idle->SetIdleReclaim(0, nullptr);
  int at_clear = reclaimed.load();
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(reclaimed.load(), at_clear);
}

TEST(ExecutorTest, SubmitUrgentJumpsItsOwnQueueOnly) {
  Executor ex({.threads = 1});
  auto gate_tenant = ex.CreateTenant();
  auto tenant = ex.CreateTenant();
  CompletionLog log;

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  gate_tenant->Submit([opened] { opened.wait(); });

  tenant->Submit([&log] { log.Note("a"); });
  tenant->Submit([&log] { log.Note("b"); });
  tenant->SubmitUrgent([&log] { log.Note("urgent"); });
  gate.set_value();
  ASSERT_TRUE(WaitFor([&] { return ex.tasks_run() == 4; }));
  EXPECT_EQ(log.Get(),
            (std::vector<std::string>{"urgent", "a", "b"}));
}

TEST(ExecutorTest, TenantDtorDiscardsQueuedAndWaitsForRunning) {
  Executor ex({.threads = 1});
  auto tenant = ex.CreateTenant();
  std::atomic<bool> long_task_done{false};
  std::atomic<int> discarded_ran{0};
  std::promise<void> started;

  tenant->Submit([&] {
    started.set_value();
    std::this_thread::sleep_for(50ms);
    long_task_done = true;
  });
  for (int i = 0; i < 5; ++i) {
    tenant->Submit([&] { ++discarded_ran; });
  }
  started.get_future().wait();  // the long task is running
  tenant.reset();               // must wait for it, discard the rest
  EXPECT_TRUE(long_task_done.load());
  EXPECT_EQ(discarded_ran.load(), 0);
  EXPECT_EQ(ex.tenants(), 0u);
}

TEST(ExecutorTest, ZeroThreadExecutorConstructsButRunsNothing) {
  Executor ex({.threads = 0});
  EXPECT_EQ(ex.threads(), 0u);
  auto tenant = ex.CreateTenant();
  std::atomic<int> ran{0};
  tenant->Submit([&] { ++ran; });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(tenant->queued(), 1u);
  // Dtor discards the queued task without hanging.
}

TEST(ExecutorTest, ManyThreadsRunTenantsConcurrently) {
  Executor ex({.threads = 4});
  EXPECT_EQ(ex.threads(), 4u);
  std::vector<std::unique_ptr<Executor::Tenant>> tenants;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    tenants.push_back(ex.CreateTenant());
    for (int i = 0; i < 16; ++i) {
      tenants.back()->Submit([&done] { ++done; });
    }
  }
  ASSERT_TRUE(WaitFor([&] { return done.load() == 64; }));
  EXPECT_EQ(ex.tasks_run(), 64u);
  EXPECT_EQ(ex.tenants(), 4u);
}

TEST(ExecutorTest, TenantsMayOutliveTheExecutor) {
  std::unique_ptr<Executor::Tenant> tenant;
  {
    Executor ex({.threads = 2});
    tenant = ex.CreateTenant();
    std::atomic<int> ran{0};
    tenant->Submit([&] { ++ran; });
    ASSERT_TRUE(WaitFor([&] { return ran.load() == 1; }));
  }
  // Executor gone: submissions queue forever but nothing crashes.
  tenant->Submit([] {});
  EXPECT_EQ(tenant->queued(), 1u);
  tenant.reset();
}

}  // namespace
}  // namespace bgps::core
