// Stress layer (ctest label: stress) for the record-plane fan-out
// tier: a simulator-generated ~50k-record mixed corpus decoded ONCE by
// a StreamPool-vended publisher into the mq cluster while 4 concurrent
// TCP subscribers with distinct filters live-tail the FanoutServer.
// Each subscriber's transcript must be fingerprint-identical to a
// direct synchronous BgpStream run with the same filters, and the
// publisher's dump-file open count must equal a single direct run's —
// N subscribers, one decode.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <tuple>

#include "broker/archive.hpp"
#include "pool/fanout_server.hpp"
#include "pool/record_fanout.hpp"
#include "pool/stream_pool.hpp"
#include "sim/corpus.hpp"

namespace bgps {
namespace {

using broker::DumpFileMeta;
using core::BgpStream;

// The corpus window, wide open: everything the simulator generated.
constexpr Timestamp kWindowStart = 0;
constexpr Timestamp kWindowEnd = 4102444800;

using RecordFp = std::tuple<Timestamp, std::string, int, int, int>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct StreamRun {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
  Status status;
};

StreamRun Drain(BgpStream& stream) {
  StreamRun out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream.Elems(*rec)) {
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  out.status = stream.status();
  return out;
}

class VectorDataInterface : public core::DataInterface {
 public:
  explicit VectorDataInterface(std::vector<DumpFileMeta> files)
      : files_(std::move(files)) {}
  core::DataBatch NextBatch(const core::FilterSet&) override {
    core::DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<DumpFileMeta> files_;
  bool served_ = false;
};

struct Corpus {
  std::string root;
  std::vector<DumpFileMeta> files;
};

const Corpus& GetCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus;
    c->root = (std::filesystem::temp_directory_path() /
               ("bgps_fanout_stress_corpus_" + std::to_string(::getpid())))
                  .string();
    sim::CorpusOptions options;
    options.scenario = "mixed";
    options.duration = 2 * 3600;
    options.flaps_per_hour = 2600;  // sized to clear 50k records total
    options.seed = 7;
    auto stats = sim::GenerateCorpus(options, c->root);
    if (!stats.ok()) {
      ADD_FAILURE() << "corpus generation failed: "
                    << stats.status().ToString();
      return c;
    }
    broker::ArchiveIndex index(c->root);
    if (!index.Rescan().ok()) {
      ADD_FAILURE() << "corpus rescan failed";
      return c;
    }
    c->files = index.files();
    return c;
  }();
  return *corpus;
}

class CorpusCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(GetCorpus().root, ec);
  }
};
const auto* const kCleanup =
    ::testing::AddGlobalTestEnvironment(new CorpusCleanup);

// Direct ground truth: synchronous private pipeline with `filters`.
StreamRun DirectRun(const core::FilterSet& filters,
                    size_t* file_opens = nullptr) {
  BgpStream::Options opt;
  if (file_opens)
    opt.file_open_hook = [file_opens](const DumpFileMeta&) {
      ++*file_opens;
    };
  BgpStream stream(std::move(opt));
  VectorDataInterface di(GetCorpus().files);
  stream.filters() = filters;
  stream.SetDataInterface(&di);
  EXPECT_TRUE(stream.Start().ok());
  StreamRun run = Drain(stream);
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  return run;
}

core::FilterSet BaseFilters() {
  core::FilterSet fs;
  fs.interval = {kWindowStart, kWindowEnd};
  return fs;
}

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

// One TCP subscription: sends the FILTER/GO preamble, reads the whole
// transcript, parses it back into fingerprints.
struct TcpRun {
  StreamRun run;
  std::string terminal;  // "END ok" or the ERR line
};

TcpRun Subscribe(uint16_t port,
                 const std::vector<std::pair<std::string, std::string>>&
                     filters) {
  TcpRun out;
  int fd = ConnectLoopback(port);
  std::ostringstream req;
  req << "FILTER interval " << kWindowStart << "," << kWindowEnd << "\n";
  for (const auto& [k, v] : filters) req << "FILTER " << k << " " << v << "\n";
  req << "GO\n";
  std::string r = req.str();
  EXPECT_EQ(::send(fd, r.data(), r.size(), 0), ssize_t(r.size()));

  std::string transcript;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    transcript.append(buf, size_t(n));
  }
  ::close(fd);

  std::istringstream in(transcript);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("REC ", 0) == 0) {
      std::istringstream rec(line.substr(4));
      uint64_t seq, nelems;
      int64_t ts;
      std::string collector;
      int dump_type, status, position;
      rec >> seq >> ts >> collector >> dump_type >> status >> position >>
          nelems;
      out.run.records.emplace_back(Timestamp(ts), collector, dump_type,
                                   status, position);
    } else if (line.rfind("ELEM ", 0) == 0) {
      std::string body = line.substr(5);
      std::vector<std::string> f;
      size_t start = 0;
      for (int i = 0; i < 4; ++i) {
        size_t bar = body.find('|', start);
        if (bar == std::string::npos) break;
        f.push_back(body.substr(start, bar - start));
        start = bar + 1;
      }
      f.push_back(body.substr(start));
      if (f.size() != 5) {
        out.terminal = "BAD ELEM LINE: " + line;
        return out;
      }
      out.run.elems.emplace_back(std::stoi(f[0]),
                                 Timestamp(std::stoll(f[1])),
                                 uint32_t(std::stoul(f[2])), f[3], f[4]);
    } else {
      out.terminal = line;
    }
  }
  return out;
}

void ExpectRunsEqual(const StreamRun& got, const StreamRun& want,
                     const std::string& label) {
  ASSERT_EQ(got.records.size(), want.records.size()) << label;
  for (size_t i = 0; i < want.records.size(); ++i)
    ASSERT_EQ(got.records[i], want.records[i]) << label << " record " << i;
  ASSERT_EQ(got.elems.size(), want.elems.size()) << label;
  for (size_t i = 0; i < want.elems.size(); ++i)
    ASSERT_EQ(got.elems[i], want.elems[i]) << label << " elem " << i;
}

TEST(FanOutStress, FourConcurrentTcpSubscribersMatchDirectBaselines) {
  const Corpus& corpus = GetCorpus();
  ASSERT_FALSE(corpus.files.empty());
  const std::string collector = corpus.files.front().collector;

  // The daemon shape: shared decode pool, embedded cluster, TCP front
  // end — the subscribers connect BEFORE the publisher starts, so they
  // live-tail the whole run (replay-from-0 plus watermark-gated tail).
  mq::Cluster cluster;
  pool::FanoutServer::Options fopt;
  fopt.cluster = &cluster;
  pool::FanoutServer server(fopt);
  ASSERT_TRUE(server.Start().ok());

  auto pool = StreamPool::Create({.threads = 4, .record_budget = 4096});
  ASSERT_TRUE(pool.ok());
  std::atomic<size_t> publisher_opens{0};
  BgpStream::Options sopt;
  sopt.file_open_hook = [&publisher_opens](const DumpFileMeta&) {
    ++publisher_opens;
  };
  auto stream = (*pool)->CreateStream(std::move(sopt), {.name = "publisher"});
  VectorDataInterface di(corpus.files);
  stream->SetInterval(kWindowStart, kWindowEnd);
  stream->SetDataInterface(&di);
  ASSERT_TRUE(stream->Start().ok());

  const std::vector<
      std::pair<std::string, std::vector<std::pair<std::string, std::string>>>>
      cases = {
          {"unfiltered", {}},
          {"collector", {{"collector", collector}}},
          {"announcements", {{"elemtype", "announcements"}}},
          {"v4", {{"ipversion", "4"}}},
      };

  std::vector<TcpRun> tcp_runs(cases.size());
  std::vector<std::thread> subscribers;
  subscribers.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    subscribers.emplace_back([&, i] {
      tcp_runs[i] = Subscribe(server.port(), cases[i].second);
    });
  }

  pool::RecordPublisher::Options popt;
  popt.cluster = &cluster;
  pool::RecordPublisher publisher(popt);
  auto stats = publisher.Run(*stream);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->records_published, 50000u) << "corpus undersized";

  for (auto& t : subscribers) t.join();
  server.Stop();

  // Decode-count pin: publishing decoded each dump file exactly as
  // often as one direct run does, and the 4 subscriber drains added
  // nothing.
  size_t direct_opens = 0;
  StreamRun unfiltered = DirectRun(BaseFilters(), &direct_opens);
  EXPECT_EQ(publisher_opens.load(), direct_opens);
  ASSERT_EQ(unfiltered.records.size(), stats->records_published);

  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& [label, filter_kvs] = cases[i];
    EXPECT_EQ(tcp_runs[i].terminal, "END ok") << label;
    StreamRun want;
    if (label == "unfiltered") {
      want = unfiltered;
    } else {
      core::FilterSet fs = BaseFilters();
      for (const auto& [k, v] : filter_kvs)
        ASSERT_TRUE(fs.AddOption(k, v).ok()) << label;
      want = DirectRun(fs);
    }
    EXPECT_FALSE(want.records.empty()) << label;
    ExpectRunsEqual(tcp_runs[i].run, want, label);
  }
  EXPECT_EQ(publisher_opens.load(), direct_opens);
  EXPECT_EQ(server.connections_served(), cases.size());
}

}  // namespace
}  // namespace bgps
