// Record-plane fan-out tier (pool/record_fanout + pool/fanout_server):
// the correctness pin of the whole tier. One RecordPublisher decodes
// the archive exactly once into an mq::Cluster; N RecordSubscribers
// with distinct filters each replay a stream whose record+elem
// fingerprint is byte-identical to a direct BgpStream run with the
// same filters — plus the decode-count pin (file opens happen once,
// not once per subscriber), governor backpressure (a stalled pinned
// subscriber blocks publication with bounded cluster bytes, then
// resumes losslessly), and the TCP front end streaming the same
// fingerprint over a real socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <tuple>

#include "broker/broker.hpp"
#include "core/data_interface.hpp"
#include "pool/fanout_server.hpp"
#include "pool/record_fanout.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps {
namespace {

broker::Broker::Options Historical() {
  broker::Broker::Options opt;
  opt.clock = [] { return Timestamp(4102444800); };
  return opt;
}

// The exact fingerprint fields the stress suite pins (and the REC/ELEM
// line protocol carries): any drift between a subscriber and a direct
// stream shows up as a tuple mismatch at a precise index.
using RecordFp = std::tuple<Timestamp, std::string, int, int, int>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct RunFp {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
};

// Drains any stream-shaped source: BgpStream and RecordSubscriber share
// the NextRecord()/Elems()/status() iteration surface by design.
template <typename Stream>
RunFp Drain(Stream& stream) {
  RunFp out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector.str(),
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream.Elems(*rec))
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
  }
  return out;
}

void ExpectRunsEqual(const RunFp& got, const RunFp& want,
                     const std::string& label) {
  ASSERT_EQ(got.records.size(), want.records.size()) << label;
  for (size_t i = 0; i < want.records.size(); ++i)
    ASSERT_EQ(got.records[i], want.records[i]) << label << " record " << i;
  ASSERT_EQ(got.elems.size(), want.elems.size()) << label;
  for (size_t i = 0; i < want.elems.size(); ++i)
    ASSERT_EQ(got.elems[i], want.elems[i]) << label << " elem " << i;
}

core::FilterSet BaseFilters() {
  const auto& arch = testutil::GetSmallArchive();
  core::FilterSet fs;
  fs.interval = {arch.start, arch.end};
  return fs;
}

// The ground truth: a direct BgpStream run with `filters`, fresh broker
// session, synchronous decode.
RunFp DirectRun(const core::FilterSet& filters, size_t* file_opens = nullptr) {
  const auto& arch = testutil::GetSmallArchive();
  broker::Broker broker(arch.root, Historical());
  core::BrokerDataInterface di(&broker);
  core::BgpStream::Options opt;
  if (file_opens)
    opt.file_open_hook = [file_opens](const broker::DumpFileMeta&) {
      ++*file_opens;
    };
  core::BgpStream stream(opt);
  stream.filters() = filters;
  stream.SetDataInterface(&di);
  EXPECT_TRUE(stream.Start().ok());
  RunFp fp = Drain(stream);
  EXPECT_TRUE(stream.status().ok()) << stream.status().ToString();
  return fp;
}

// Publishes the whole small archive (meta scope only — full elem
// extraction) into `cluster`, counting dump-file opens.
Result<pool::RecordPublisher::Stats> PublishArchive(
    mq::Cluster* cluster, size_t* file_opens = nullptr,
    std::shared_ptr<core::MemoryGovernor> governor = nullptr,
    std::optional<mq::RetentionOptions> topic_retention = std::nullopt,
    size_t batch_records = 64) {
  const auto& arch = testutil::GetSmallArchive();
  broker::Broker broker(arch.root, Historical());
  core::BrokerDataInterface di(&broker);
  core::BgpStream::Options opt;
  if (file_opens)
    opt.file_open_hook = [file_opens](const broker::DumpFileMeta&) {
      ++*file_opens;
    };
  core::BgpStream stream(opt);
  stream.SetInterval(arch.start, arch.end);
  stream.SetDataInterface(&di);
  BGPS_RETURN_IF_ERROR(stream.Start());
  pool::RecordPublisher::Options popt;
  popt.cluster = cluster;
  popt.governor = std::move(governor);
  popt.batch_records = batch_records;
  popt.topic_retention = topic_retention;
  pool::RecordPublisher publisher(popt);
  return publisher.Run(stream);
}

// The tentpole pin: 4 subscribers, distinct filters, each replay
// fingerprint-equal to its direct-stream ground truth — off ONE decode
// of the archive (file_open_hook count identical to a single run, and
// untouched by subscriber drains).
TEST(FanOut, SubscribersMatchDirectStreamsByteForByte) {
  const auto& arch = testutil::GetSmallArchive();
  mq::Cluster cluster;
  size_t publisher_opens = 0;
  auto stats = PublishArchive(&cluster, &publisher_opens);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->records_published, 0u);
  EXPECT_GT(stats->elems_published, stats->records_published);
  EXPECT_EQ(stats->collectors_seen, 2u);

  size_t direct_opens = 0;
  RunFp unfiltered = DirectRun(BaseFilters(), &direct_opens);
  EXPECT_EQ(publisher_opens, direct_opens)
      << "publisher must decode exactly what one direct run decodes";

  std::vector<std::pair<std::string, core::FilterSet>> cases;
  cases.emplace_back("unfiltered", BaseFilters());
  {
    core::FilterSet fs = BaseFilters();
    ASSERT_TRUE(
        fs.AddOption("collector", arch.driver->collectors()[0].config().name)
            .ok());
    cases.emplace_back("collector", fs);
  }
  {
    core::FilterSet fs = BaseFilters();
    ASSERT_TRUE(fs.AddOption("elemtype", "announcements").ok());
    cases.emplace_back("announcements", fs);
  }
  {
    core::FilterSet fs = BaseFilters();
    ASSERT_TRUE(fs.AddOption("ipversion", "4").ok());
    fs.interval = {arch.start, arch.start + 1800};  // half the window
    cases.emplace_back("v4-halfwindow", fs);
  }

  for (const auto& [label, fs] : cases) {
    pool::RecordSubscriber::Options sopt;
    sopt.cluster = &cluster;
    sopt.filters = fs;
    pool::RecordSubscriber sub(sopt);
    ASSERT_TRUE(sub.Start().ok());
    RunFp got = Drain(sub);
    ASSERT_TRUE(sub.status().ok()) << label << ": " << sub.status().ToString();
    RunFp want = label == "unfiltered" ? unfiltered : DirectRun(fs);
    ExpectRunsEqual(got, want, label);
    EXPECT_FALSE(want.records.empty()) << label;
  }

  // N subscriber drains re-decoded nothing.
  EXPECT_EQ(publisher_opens, direct_opens);
}

// from_seq replays the publisher's suffix: a subscriber starting at
// ordinal K sees exactly the tail of the unfiltered run.
TEST(FanOut, FromSeqReplaysSuffix) {
  mq::Cluster cluster;
  auto stats = PublishArchive(&cluster);
  ASSERT_TRUE(stats.ok());
  const uint64_t total = stats->records_published;
  ASSERT_GT(total, 100u);

  RunFp full = DirectRun(BaseFilters());
  ASSERT_EQ(full.records.size(), total);

  const uint64_t from = total / 2;
  pool::RecordSubscriber::Options sopt;
  sopt.cluster = &cluster;
  sopt.filters = BaseFilters();
  sopt.from_seq = from;
  pool::RecordSubscriber sub(sopt);
  ASSERT_TRUE(sub.Start().ok());
  RunFp got = Drain(sub);
  ASSERT_TRUE(sub.status().ok());
  ASSERT_EQ(got.records.size(), total - from);
  for (size_t i = 0; i < got.records.size(); ++i)
    ASSERT_EQ(got.records[i], full.records[from + i]) << "record " << i;
  EXPECT_EQ(sub.next_seq(), total);
}

// The satellite regression: publisher batches lease governor slots, so
// a stalled subscriber (pinned at offset 0, never polling) blocks
// publication with cluster bytes bounded by the governor budget; when
// the subscriber resumes, publication completes and the replay is
// still identical. Also proves the lease ledger balances: destroying
// the cluster returns every slot.
TEST(FanOut, StalledSubscriberBackpressuresPublisherBoundedly) {
  const auto& arch = testutil::GetSmallArchive();
  // Sizing: retention keeps up to max_messages batches per topic even
  // after every subscriber moves on, and those messages hold leases
  // until evicted — so the budget must exceed that steady-state floor
  // (2 msgs x 32 records x 2 topics = 128) plus one in-flight batch,
  // or the publisher wedges on a budget that can never free up.
  constexpr size_t kBudget = 256;  // records; far below the archive total
  constexpr size_t kBatch = 32;
  auto governor = std::make_shared<core::MemoryGovernor>(kBudget);
  auto cluster = std::make_unique<mq::Cluster>();
  const mq::RetentionOptions tight{/*max_messages=*/2, /*max_bytes=*/0};

  // Pre-create the record topics so the subscriber can pin offset 0
  // before the publisher produces anything.
  std::vector<std::string> names;
  for (const auto& c : arch.driver->collectors()) {
    names.push_back(c.config().name);
    cluster->CreateTopic(mq::RecordTopic(c.config().name), 1, tight);
  }

  RunFp got;
  std::atomic<bool> done{false};
  Result<pool::RecordPublisher::Stats> stats{pool::RecordPublisher::Stats{}};
  {
    pool::RecordSubscriber::Options sopt;
    sopt.cluster = cluster.get();
    sopt.filters = BaseFilters();
    pool::RecordSubscriber sub(sopt);
    ASSERT_TRUE(sub.Start().ok());  // pins installed, then we stall

    std::thread publisher([&] {
      stats = PublishArchive(cluster.get(), nullptr, governor, tight, kBatch);
      done.store(true);
    });

    // The publisher must wedge against the budget: every lease is held
    // by retained-but-pinned messages, so in_use converges to within
    // one batch of capacity and publication stops.
    while (!done.load() && governor->in_use() + kBatch * names.size() <=
                               kBudget) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_FALSE(done.load())
        << "publisher finished despite a stalled pinned subscriber";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_FALSE(done.load());
    EXPECT_LE(governor->in_use(), kBudget);
    size_t retained = 0;
    for (const auto& n : names)
      retained += cluster->RetainedBytes(mq::RecordTopic(n), 0);
    EXPECT_GT(retained, 0u);

    // Resume: draining advances the pins, truncation evicts, evictions
    // release leases, the publisher unblocks — losslessly.
    got = Drain(sub);
    publisher.join();
    ASSERT_TRUE(sub.status().ok()) << sub.status().ToString();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_LE(governor->max_in_use(), kBudget);
  }

  ExpectRunsEqual(got, DirectRun(BaseFilters()), "resumed replay");

  // Every lease is owed to a retained message's eviction hook; cluster
  // teardown fires them all, balancing the ledger exactly.
  cluster.reset();
  EXPECT_EQ(governor->in_use(), 0u);
  EXPECT_TRUE(governor->health().ok());
}

// --- TCP front end ---------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

std::string ReadToEof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, size_t(n));
  }
  return out;
}

// Parses the REC/ELEM transcript back into fingerprints. Returns the
// terminal line ("END ok" / "ERR ...") for the caller to assert on.
std::string ParseTranscript(const std::string& transcript, RunFp& out) {
  std::istringstream in(transcript);
  std::string line, terminal;
  while (std::getline(in, line)) {
    if (line.rfind("REC ", 0) == 0) {
      std::istringstream rec(line.substr(4));
      uint64_t seq, nelems;
      int64_t ts;
      std::string collector;
      int dump_type, status, position;
      rec >> seq >> ts >> collector >> dump_type >> status >> position >>
          nelems;
      out.records.emplace_back(Timestamp(ts), collector, dump_type, status,
                               position);
    } else if (line.rfind("ELEM ", 0) == 0) {
      // type|time|peer_asn|prefix|as_path — the path may be empty or
      // contain spaces, so split on '|' (exactly 5 fields).
      std::string body = line.substr(5);
      std::vector<std::string> f;
      size_t start = 0;
      for (int i = 0; i < 4; ++i) {
        size_t bar = body.find('|', start);
        if (bar == std::string::npos) break;
        f.push_back(body.substr(start, bar - start));
        start = bar + 1;
      }
      f.push_back(body.substr(start));
      if (f.size() != 5) return "BAD ELEM LINE: " + line;
      out.elems.emplace_back(std::stoi(f[0]), Timestamp(std::stoll(f[1])),
                             uint32_t(std::stoul(f[2])), f[3], f[4]);
    } else {
      terminal = line;
    }
  }
  return terminal;
}

TEST(FanOut, TcpServerStreamsIdenticalTranscript) {
  const auto& arch = testutil::GetSmallArchive();
  mq::Cluster cluster;
  ASSERT_TRUE(PublishArchive(&cluster).ok());

  pool::FanoutServer::Options fopt;
  fopt.cluster = &cluster;
  pool::FanoutServer server(fopt);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string collector = arch.driver->collectors()[1].config().name;
  core::FilterSet fs = BaseFilters();
  ASSERT_TRUE(fs.AddOption("collector", collector).ok());

  int fd = ConnectLoopback(server.port());
  std::ostringstream req;
  req << "FILTER collector " << collector << "\n"
      << "FILTER interval " << arch.start << "," << arch.end << "\n"
      << "GO\n";
  std::string r = req.str();
  ASSERT_EQ(::send(fd, r.data(), r.size(), 0), ssize_t(r.size()));
  std::string transcript = ReadToEof(fd);
  ::close(fd);
  server.Stop();

  RunFp got;
  EXPECT_EQ(ParseTranscript(transcript, got), "END ok");
  ExpectRunsEqual(got, DirectRun(fs), "tcp transcript");
  EXPECT_FALSE(got.records.empty());
  EXPECT_EQ(server.connections_served(), 1u);
}

TEST(FanOut, TcpServerRejectsBadCommands) {
  mq::Cluster cluster;
  pool::FanoutServer::Options fopt;
  fopt.cluster = &cluster;
  pool::FanoutServer server(fopt);
  ASSERT_TRUE(server.Start().ok());

  int fd = ConnectLoopback(server.port());
  std::string r = "FILTER nosuchkey x\n";
  ASSERT_EQ(::send(fd, r.data(), r.size(), 0), ssize_t(r.size()));
  std::string reply = ReadToEof(fd);
  ::close(fd);
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;

  fd = ConnectLoopback(server.port());
  r = "FLY\n";
  ASSERT_EQ(::send(fd, r.data(), r.size(), 0), ssize_t(r.size()));
  reply = ReadToEof(fd);
  ::close(fd);
  EXPECT_EQ(reply.rfind("ERR unknown command", 0), 0u) << reply;
  server.Stop();
}

}  // namespace
}  // namespace bgps
