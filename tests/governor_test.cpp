// Tests of the global record-budget ledger (runtime layer): the hard
// cap, blocked acquires with FIFO-fair wakeup (no barging), and the
// stats the stress tests rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/governor.hpp"

namespace bgps::core {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool WaitFor(Pred pred, std::chrono::seconds deadline = 10s) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(MemoryGovernorTest, TryAcquireEnforcesTheHardCap) {
  MemoryGovernor gov(4);
  EXPECT_EQ(gov.capacity(), 4u);
  EXPECT_TRUE(gov.TryAcquire(3));
  EXPECT_FALSE(gov.TryAcquire(2));  // 3 + 2 > 4
  EXPECT_TRUE(gov.TryAcquire(1));
  EXPECT_EQ(gov.in_use(), 4u);
  EXPECT_FALSE(gov.TryAcquire(1));
  gov.Release(2);
  EXPECT_EQ(gov.in_use(), 2u);
  EXPECT_TRUE(gov.TryAcquire(2));
  EXPECT_EQ(gov.max_in_use(), 4u);  // the watermark never exceeded the cap
  gov.Release(4);
  EXPECT_EQ(gov.in_use(), 0u);
}

TEST(MemoryGovernorTest, AcquireBlocksUntilReleased) {
  MemoryGovernor gov(4);
  ASSERT_TRUE(gov.TryAcquire(3));
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(gov.Acquire(2).ok());
    granted = true;
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 1; }));
  EXPECT_FALSE(granted.load());
  gov.Release(1);  // free = 2: exactly enough
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(gov.in_use(), 4u);
  gov.Release(4);
}

TEST(MemoryGovernorTest, WakeupIsFifoFairWithoutBarging) {
  MemoryGovernor gov(4);
  ASSERT_TRUE(gov.TryAcquire(4));

  std::mutex mu;
  std::vector<int> grant_order;
  // First a large demand, then a small one that *could* be satisfied
  // earlier — FIFO fairness must hold the small one back.
  std::thread big([&] {
    EXPECT_TRUE(gov.Acquire(3).ok());
    {
      std::lock_guard<std::mutex> lock(mu);
      grant_order.push_back(3);
    }
    gov.Release(3);
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 1; }));
  std::thread small([&] {
    EXPECT_TRUE(gov.Acquire(1).ok());
    std::lock_guard<std::mutex> lock(mu);
    grant_order.push_back(1);
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 2; }));

  gov.Release(1);  // free = 1: enough for the small demand — but it is
                   // not at the head; nobody may be granted yet.
  EXPECT_FALSE(gov.TryAcquire(1));  // and TryAcquire may not barge either
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(gov.waiting(), 2u);

  gov.Release(2);  // free = 3: the head demand fits, runs, releases;
                   // only then is the small one granted.
  big.join();
  small.join();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 3);
  EXPECT_EQ(grant_order[1], 1);
  // Held at the end: 1 of the test's original 4, plus the small
  // demand's slot.
  EXPECT_EQ(gov.in_use(), 2u);
  gov.Release(2);
}

TEST(MemoryGovernorTest, DemandBeyondCapacityIsAnError) {
  MemoryGovernor gov(4);
  Status st = gov.Acquire(5);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(st.message(),
            "MemoryGovernor: demand of 5 records exceeds the budget of 4");
  EXPECT_EQ(gov.in_use(), 0u);
  EXPECT_EQ(gov.waiting(), 0u);
  // The ledger still works afterwards.
  EXPECT_TRUE(gov.Acquire(4).ok());
  gov.Release(4);
}

TEST(MemoryGovernorTest, OverReleasePoisonsTheLedgerWithExactDiagnostic) {
  // Releasing more than is leased is a double-release bug in the
  // caller. Clamping would silently inflate the budget; instead the
  // ledger poisons with the exact diagnostic and refuses all further
  // grants.
  MemoryGovernor gov(8);
  ASSERT_TRUE(gov.TryAcquire(3));
  EXPECT_TRUE(gov.health().ok());
  gov.Release(5);  // only 3 leased
  Status h = gov.health();
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(h.message(),
            "MemoryGovernor: released 5 slots but only 3 are leased "
            "(double release)");
  EXPECT_FALSE(gov.TryAcquire(1));
  Status acq = gov.Acquire(1);
  ASSERT_FALSE(acq.ok());
  EXPECT_EQ(acq.message(), h.message());
  // The diagnostic is latched: a later (otherwise valid) release does
  // not clear it or corrupt the evidence further.
  gov.Release(1);
  EXPECT_EQ(gov.health().message(), h.message());
}

TEST(MemoryGovernorTest, OverReleaseWakesBlockedWaitersWithTheError) {
  MemoryGovernor gov(4);
  ASSERT_TRUE(gov.TryAcquire(4));
  std::atomic<bool> failed{false};
  std::thread waiter([&] {
    Status st = gov.Acquire(2);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("double release"), std::string::npos);
    failed = true;
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 1; }));
  gov.Release(5);  // 5 > 4: poison — the waiter must not block forever
  waiter.join();
  EXPECT_TRUE(failed.load());
  EXPECT_EQ(gov.waiting(), 0u);
}

TEST(MemoryGovernorTest, ZeroDemandIsAnUnconditionalNoOpGrant) {
  // A zero-record MRT file must never block behind a full budget or an
  // earlier waiter: Acquire(0) does not enqueue, TryAcquire(0) does not
  // fail, and neither changes the ledger.
  MemoryGovernor gov(2);
  ASSERT_TRUE(gov.TryAcquire(2));  // budget exhausted
  std::thread waiter([&] { EXPECT_TRUE(gov.Acquire(1).ok()); });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 1; }));

  EXPECT_TRUE(gov.TryAcquire(0));
  EXPECT_TRUE(gov.Acquire(0).ok());
  EXPECT_EQ(gov.waiting(), 1u);  // the zero demands never queued
  EXPECT_EQ(gov.in_use(), 2u);   // and never touched the ledger

  gov.Release(2);
  waiter.join();
  gov.Release(1);
  EXPECT_EQ(gov.in_use(), 0u);
  EXPECT_TRUE(gov.health().ok());
}

TEST(MemoryGovernorTest, SnapshotIsLockConsistent) {
  MemoryGovernor gov(10);
  ASSERT_TRUE(gov.TryAcquire(7));
  gov.Release(3);
  MemoryGovernor::Stats s = gov.snapshot();
  EXPECT_EQ(s.capacity, 10u);
  EXPECT_EQ(s.in_use, 4u);
  EXPECT_EQ(s.max_in_use, 7u);
  EXPECT_EQ(s.waiting, 0u);
  gov.Release(4);
}

TEST(MemoryGovernorTest, WatermarkTracksPeakNotCurrent) {
  MemoryGovernor gov(10);
  ASSERT_TRUE(gov.TryAcquire(7));
  gov.Release(5);
  ASSERT_TRUE(gov.TryAcquire(2));
  EXPECT_EQ(gov.in_use(), 4u);
  EXPECT_EQ(gov.max_in_use(), 7u);
  gov.Release(4);
}

TEST(MemoryGovernorTest, ContentionHookFiresWhileDemandsAreBlockedOnly) {
  // The waiter-driven reclaim trigger's signal: once when an Acquire
  // parks, then repeatedly on the re-signal interval while it stays
  // blocked — never for satisfied demands, routine TryAcquire denials,
  // or after the last waiter is granted (Releases themselves fire
  // nothing; the blocked waiter is its own clock).
  MemoryGovernor gov(4);
  std::atomic<int> fires{0};
  gov.AddContentionHook([&fires] {
    ++fires;
    return true;  // stays registered
  });

  ASSERT_TRUE(gov.TryAcquire(3));
  EXPECT_TRUE(gov.Acquire(1).ok());  // granted inline: no contention
  EXPECT_EQ(fires.load(), 0);
  EXPECT_FALSE(gov.TryAcquire(1));  // opportunistic denial: no contention
  EXPECT_EQ(fires.load(), 0);

  std::thread waiter([&] { EXPECT_TRUE(gov.Acquire(3).ok()); });
  ASSERT_TRUE(WaitFor([&] { return fires.load() >= 1; }));  // parked

  gov.Release(1);  // 2 free < 3 demanded: waiter stays blocked...
  ASSERT_TRUE(WaitFor([&] { return fires.load() >= 2; }));  // ...and re-signals
  gov.Release(2);  // grants the waiter; nobody left starving
  waiter.join();
  int at_grant = fires.load();
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(fires.load(), at_grant);  // signals stop with the contention
  gov.Release(1 + 3);
  EXPECT_EQ(gov.in_use(), 0u);
  EXPECT_TRUE(gov.health().ok());
}

}  // namespace
}  // namespace bgps::core
