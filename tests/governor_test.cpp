// Tests of the global record-budget ledger (runtime layer): the hard
// cap, blocked acquires with FIFO-fair wakeup (no barging), and the
// stats the stress tests rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/governor.hpp"

namespace bgps::core {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool WaitFor(Pred pred, std::chrono::seconds deadline = 10s) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(MemoryGovernorTest, TryAcquireEnforcesTheHardCap) {
  MemoryGovernor gov(4);
  EXPECT_EQ(gov.capacity(), 4u);
  EXPECT_TRUE(gov.TryAcquire(3));
  EXPECT_FALSE(gov.TryAcquire(2));  // 3 + 2 > 4
  EXPECT_TRUE(gov.TryAcquire(1));
  EXPECT_EQ(gov.in_use(), 4u);
  EXPECT_FALSE(gov.TryAcquire(1));
  gov.Release(2);
  EXPECT_EQ(gov.in_use(), 2u);
  EXPECT_TRUE(gov.TryAcquire(2));
  EXPECT_EQ(gov.max_in_use(), 4u);  // the watermark never exceeded the cap
  gov.Release(4);
  EXPECT_EQ(gov.in_use(), 0u);
}

TEST(MemoryGovernorTest, AcquireBlocksUntilReleased) {
  MemoryGovernor gov(4);
  ASSERT_TRUE(gov.TryAcquire(3));
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(gov.Acquire(2).ok());
    granted = true;
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 1; }));
  EXPECT_FALSE(granted.load());
  gov.Release(1);  // free = 2: exactly enough
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(gov.in_use(), 4u);
  gov.Release(4);
}

TEST(MemoryGovernorTest, WakeupIsFifoFairWithoutBarging) {
  MemoryGovernor gov(4);
  ASSERT_TRUE(gov.TryAcquire(4));

  std::mutex mu;
  std::vector<int> grant_order;
  // First a large demand, then a small one that *could* be satisfied
  // earlier — FIFO fairness must hold the small one back.
  std::thread big([&] {
    EXPECT_TRUE(gov.Acquire(3).ok());
    {
      std::lock_guard<std::mutex> lock(mu);
      grant_order.push_back(3);
    }
    gov.Release(3);
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 1; }));
  std::thread small([&] {
    EXPECT_TRUE(gov.Acquire(1).ok());
    std::lock_guard<std::mutex> lock(mu);
    grant_order.push_back(1);
  });
  ASSERT_TRUE(WaitFor([&] { return gov.waiting() == 2; }));

  gov.Release(1);  // free = 1: enough for the small demand — but it is
                   // not at the head; nobody may be granted yet.
  EXPECT_FALSE(gov.TryAcquire(1));  // and TryAcquire may not barge either
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(gov.waiting(), 2u);

  gov.Release(2);  // free = 3: the head demand fits, runs, releases;
                   // only then is the small one granted.
  big.join();
  small.join();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 3);
  EXPECT_EQ(grant_order[1], 1);
  // Held at the end: 1 of the test's original 4, plus the small
  // demand's slot.
  EXPECT_EQ(gov.in_use(), 2u);
  gov.Release(2);
}

TEST(MemoryGovernorTest, DemandBeyondCapacityIsAnError) {
  MemoryGovernor gov(4);
  Status st = gov.Acquire(5);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(st.message(),
            "MemoryGovernor: demand of 5 records exceeds the budget of 4");
  EXPECT_EQ(gov.in_use(), 0u);
  EXPECT_EQ(gov.waiting(), 0u);
  // The ledger still works afterwards.
  EXPECT_TRUE(gov.Acquire(4).ok());
  gov.Release(4);
}

TEST(MemoryGovernorTest, WatermarkTracksPeakNotCurrent) {
  MemoryGovernor gov(10);
  ASSERT_TRUE(gov.TryAcquire(7));
  gov.Release(5);
  ASSERT_TRUE(gov.TryAcquire(2));
  EXPECT_EQ(gov.in_use(), 4u);
  EXPECT_EQ(gov.max_in_use(), 7u);
  gov.Release(4);
}

}  // namespace
}  // namespace bgps::core
