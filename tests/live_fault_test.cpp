// Fault-injection layer for the live ingestion tier: truncated and
// garbled BMP frames mid-session, disconnect-and-reconnect with
// sequence continuity, and governor-full parking with waiter-driven
// resume. Every fault's surviving output is pinned byte-identical to an
// uninterrupted baseline — resilience must be invisible in the stream,
// not merely non-fatal. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "pool/live_source.hpp"
#include "pool/stream_pool.hpp"
#include "tests/live_test_util.hpp"

namespace bgps {
namespace {

namespace fs = std::filesystem;
using livetest::Drain;
using livetest::StreamRun;

class LiveFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgps_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    frames_ = livetest::ScriptedBmpSession();
    wire_ = livetest::EncodeSession(frames_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  Result<std::unique_ptr<pool::LiveSource>> MakeSource(
      const std::string& spool,
      std::shared_ptr<core::MemoryGovernor> governor = nullptr,
      std::shared_ptr<core::Executor> executor = nullptr,
      size_t flush_records = 1000) {
    pool::LiveSource::Options opt;
    opt.spool_dir = Path(spool);
    opt.flush_records = flush_records;
    opt.governor = std::move(governor);
    opt.executor = std::move(executor);
    return pool::LiveSource::Create(std::move(opt));
  }

  StreamRun DrainFeed(core::LiveFeedInterface* feed) {
    core::BgpStream stream(livetest::LiveStreamOptions());
    stream.SetLive(0);
    stream.SetDataInterface(feed);
    EXPECT_TRUE(stream.Start().ok());
    return Drain(stream);
  }

  // The uninterrupted baseline every fault scenario must reproduce.
  StreamRun Baseline() {
    auto source = MakeSource("baseline-spool");
    EXPECT_TRUE(source.ok());
    EXPECT_TRUE((*source)->IngestBmp(wire_).ok());
    EXPECT_TRUE((*source)->Close().ok());
    return DrainFeed((*source)->feed());
  }

  fs::path dir_;
  std::vector<bmp::BmpMessage> frames_;
  Bytes wire_;
};

TEST_F(LiveFaultTest, ArbitraryChunkBoundariesReassembleExactly) {
  StreamRun baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());
  ASSERT_FALSE(baseline.records.empty());

  for (size_t chunk : {1u, 3u, 7u, 64u}) {
    auto source = MakeSource("spool-" + std::to_string(chunk));
    ASSERT_TRUE(source.ok());
    for (size_t off = 0; off < wire_.size(); off += chunk) {
      size_t n = std::min(chunk, wire_.size() - off);
      ASSERT_TRUE((*source)
                      ->IngestBmp(std::span<const uint8_t>(
                          wire_.data() + off, n))
                      .ok());
    }
    // Reassembly complete: nothing left buffered mid-frame.
    EXPECT_EQ((*source)->stats().buffered_bytes, 0u) << "chunk " << chunk;
    EXPECT_EQ((*source)->stats().messages_decoded, frames_.size());
    ASSERT_TRUE((*source)->Close().ok());
    StreamRun got = DrainFeed((*source)->feed());
    EXPECT_EQ(got.records, baseline.records) << "chunk " << chunk;
    EXPECT_EQ(got.elems, baseline.elems) << "chunk " << chunk;
  }
}

TEST_F(LiveFaultTest, TruncatedFrameWaitsForTheRestOfTheBytes) {
  auto source = MakeSource("spool");
  ASSERT_TRUE(source.ok());

  // Deliver everything but the last 5 bytes: the final frame is
  // incomplete and must be held, not decoded and not dropped.
  ASSERT_GT(wire_.size(), 5u);
  ASSERT_TRUE((*source)
                  ->IngestBmp(std::span<const uint8_t>(wire_.data(),
                                                       wire_.size() - 5))
                  .ok());
  auto stats = (*source)->stats();
  EXPECT_EQ(stats.messages_decoded, frames_.size() - 1);
  EXPECT_GT(stats.buffered_bytes, 0u);
  EXPECT_EQ(stats.corrupt_frames, 0u);

  // The remainder arrives; the held prefix completes the frame.
  ASSERT_TRUE((*source)
                  ->IngestBmp(std::span<const uint8_t>(
                      wire_.data() + wire_.size() - 5, 5))
                  .ok());
  EXPECT_EQ((*source)->stats().messages_decoded, frames_.size());
  EXPECT_EQ((*source)->stats().buffered_bytes, 0u);

  ASSERT_TRUE((*source)->Close().ok());
  StreamRun got = DrainFeed((*source)->feed());
  StreamRun baseline = Baseline();
  EXPECT_EQ(got.records, baseline.records);
  EXPECT_EQ(got.elems, baseline.elems);
}

TEST_F(LiveFaultTest, GarbledBodyIsSkippedAndTheFramerStaysAligned) {
  // Frame 3 (first route monitoring) gets its body bytes zeroed: still
  // well-framed, but undecodable. The framer must skip exactly that
  // frame and keep decoding the rest.
  std::vector<Bytes> encoded;
  for (const auto& f : frames_) encoded.push_back(bmp::Encode(f));
  Bytes garbled;
  for (size_t i = 0; i < encoded.size(); ++i) {
    Bytes frame = encoded[i];
    if (i == 3) {
      for (size_t b = bmp::kCommonHeaderSize; b < frame.size(); ++b)
        frame[b] = 0x00;
    }
    garbled.insert(garbled.end(), frame.begin(), frame.end());
  }

  auto source = MakeSource("spool");
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->IngestBmp(garbled).ok());
  auto stats = (*source)->stats();
  EXPECT_EQ(stats.corrupt_frames, 1u);
  EXPECT_EQ(stats.framing_losses, 0u);
  EXPECT_EQ(stats.messages_decoded, frames_.size() - 1);
  ASSERT_TRUE((*source)->Close().ok());
  StreamRun got = DrainFeed((*source)->feed());
  ASSERT_TRUE(got.status.ok());

  // Baseline without the garbled frame.
  auto without = frames_;
  without.erase(without.begin() + 3);
  auto meta = livetest::WriteBaselineDump(livetest::DirectMrtRecords(without),
                                          Path("base.mrt"));
  livetest::VectorDataInterface di({meta});
  core::BgpStream ref;
  ref.SetInterval(0, 4102444800);
  ref.SetDataInterface(&di);
  ASSERT_TRUE(ref.Start().ok());
  StreamRun baseline = Drain(ref);
  EXPECT_EQ(got.records, baseline.records);
  EXPECT_EQ(got.elems, baseline.elems);
}

TEST_F(LiveFaultTest, FramingGarbageDropsTheConnectionUntilReconnect) {
  // First two frames, then framing-level garbage (bad version byte):
  // the boundary is lost — everything after the garbage in this
  // connection must be dropped, and ingestion must resume only after
  // NoteDisconnect. The peer re-sends the rest on reconnect (BMP
  // semantics: a new session restarts with Peer Up anyway, but frame
  // continuity is the source's job, content continuity the router's).
  std::vector<Bytes> encoded;
  for (const auto& f : frames_) encoded.push_back(bmp::Encode(f));

  Bytes first_two;
  for (int i = 0; i < 2; ++i)
    first_two.insert(first_two.end(), encoded[size_t(i)].begin(),
                     encoded[size_t(i)].end());

  auto source = MakeSource("spool");
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->IngestBmp(first_two).ok());
  EXPECT_EQ((*source)->stats().messages_decoded, 2u);

  Bytes garbage{0x7f, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02};
  ASSERT_TRUE((*source)->IngestBmp(garbage).ok());
  auto stats = (*source)->stats();
  EXPECT_EQ(stats.framing_losses, 1u);
  EXPECT_EQ(stats.buffered_bytes, 0u);

  // Still desynced: even valid frames are dropped until reconnect.
  ASSERT_TRUE((*source)->IngestBmp(encoded[2]).ok());
  EXPECT_EQ((*source)->stats().messages_decoded, 2u);

  (*source)->NoteDisconnect();
  for (size_t i = 2; i < encoded.size(); ++i)
    ASSERT_TRUE((*source)->IngestBmp(encoded[i]).ok());
  EXPECT_EQ((*source)->stats().messages_decoded, frames_.size());
  ASSERT_TRUE((*source)->Close().ok());

  StreamRun got = DrainFeed((*source)->feed());
  StreamRun baseline = Baseline();
  EXPECT_EQ(got.records, baseline.records);
  EXPECT_EQ(got.elems, baseline.elems);
}

TEST_F(LiveFaultTest, DisconnectReconnectKeepsSequenceContinuity) {
  // Clean disconnect mid-session (at a frame boundary, with a partial
  // frame buffered): the partial frame dies with the connection, the
  // reconnected session re-sends from the next full frame, and the
  // total output is byte-identical to the uninterrupted run.
  std::vector<Bytes> encoded;
  for (const auto& f : frames_) encoded.push_back(bmp::Encode(f));

  auto source = MakeSource("spool");
  ASSERT_TRUE(source.ok());
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE((*source)->IngestBmp(encoded[size_t(i)]).ok());
  // Half of frame 4 arrives, then the TCP session dies.
  ASSERT_TRUE((*source)
                  ->IngestBmp(std::span<const uint8_t>(encoded[4].data(),
                                                       encoded[4].size() / 2))
                  .ok());
  EXPECT_GT((*source)->stats().buffered_bytes, 0u);
  (*source)->NoteDisconnect();
  EXPECT_EQ((*source)->stats().buffered_bytes, 0u);

  // Reconnect: the router re-sends frame 4 onward in full.
  for (size_t i = 4; i < encoded.size(); ++i)
    ASSERT_TRUE((*source)->IngestBmp(encoded[i]).ok());
  EXPECT_EQ((*source)->stats().messages_decoded, frames_.size());
  ASSERT_TRUE((*source)->Close().ok());

  StreamRun got = DrainFeed((*source)->feed());
  StreamRun baseline = Baseline();
  EXPECT_EQ(got.records, baseline.records);
  EXPECT_EQ(got.elems, baseline.elems);
}

TEST_F(LiveFaultTest, GovernorFullParksIngestThenWaiterDrivenResume) {
  // A deliberately tiny shared budget with a flush batch larger than
  // the whole ledger: the session reader cannot hold a full batch of
  // leases, so it MUST park (flush early, release, re-acquire) instead
  // of overrunning the budget — bounded buffering, never OOM. The
  // consumer tenant decodes ahead against the same ledger, so the
  // parked Acquire also exercises the waiter-driven resume.
  constexpr size_t kBudget = 4;
  auto pool = StreamPool::Create({.threads = 2, .record_budget = kBudget});
  ASSERT_TRUE(pool.ok());

  // Big frame count: 24 single-prefix updates from one peer.
  std::vector<bmp::BmpMessage> frames;
  bmp::PeerUp up;
  up.peer = livetest::LivePeer("10.0.0.1", 65001, 1451606400);
  up.local_address = *IpAddress::Parse("192.0.2.1");
  up.local_asn = 64512;
  frames.push_back({up});
  for (int i = 0; i < 24; ++i) {
    bmp::RouteMonitoring rm;
    rm.peer = livetest::LivePeer("10.0.0.1", 65001, 1451606401 + i);
    rm.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356});
    rm.update.attrs.next_hop = *IpAddress::Parse("10.0.0.1");
    rm.update.announced = {
        livetest::Pfx("10." + std::to_string(i) + ".0.0/16")};
    frames.push_back({rm});
  }
  Bytes wire = livetest::EncodeSession(frames);

  auto source = MakeSource("spool", (*pool)->governor(), (*pool)->executor(),
                           /*flush_records=*/2 * kBudget);
  ASSERT_TRUE(source.ok());

  // The live tenant exists from the start but does not consume yet.
  auto stream = (*pool)->CreateStream(
      livetest::LiveStreamOptions(),
      {.weight = 4, .deadline = true, .name = "live",
       .idle_reclaim_rounds = std::nullopt});
  stream->SetLive(0);
  stream->SetDataInterface((*source)->feed());
  ASSERT_TRUE(stream->Start().ok());

  // Session-reader thread: will park once published-but-unconsumed
  // micro-dumps (decoded ahead by the pool workers) pin the budget.
  std::atomic<bool> ingest_done{false};
  Status ingest_status = OkStatus();
  std::thread session([&] {
    ingest_status = (*source)->IngestBmp(wire);
    if (ingest_status.ok()) ingest_status = (*source)->Close();
    ingest_done.store(true);
  });

  // The ingest must stall: 25 records against a 4-slot ledger cannot
  // complete until the consumer drains. Wait for a park (or for proof
  // it finished without one, which would mean backpressure is broken).
  auto until = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((*source)->stats().parks == 0 && !ingest_done.load() &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT((*source)->stats().parks, 0u)
      << "ingest never parked against a full governor";

  // The consumer drains; the parked Acquire must wake and the session
  // must complete.
  StreamRun got = Drain(*stream);
  session.join();
  ASSERT_TRUE(ingest_status.ok()) << ingest_status.ToString();
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();

  // Output pinned against the uninterrupted baseline (unbounded
  // source, one dump) — parking must be invisible in the stream.
  auto meta = livetest::WriteBaselineDump(livetest::DirectMrtRecords(frames),
                                          Path("base.mrt"));
  livetest::VectorDataInterface di({meta});
  core::BgpStream ref;
  ref.SetInterval(0, 4102444800);
  ref.SetDataInterface(&di);
  ASSERT_TRUE(ref.Start().ok());
  StreamRun baseline = Drain(ref);
  ASSERT_EQ(got.records.size(), baseline.records.size());
  for (size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(std::get<0>(got.records[i]), std::get<0>(baseline.records[i]));
    EXPECT_EQ(std::get<3>(got.records[i]), std::get<3>(baseline.records[i]));
  }
  EXPECT_EQ(got.elems, baseline.elems);

  // Teardown: everything released, ledger at zero, never over budget.
  stream.reset();
  source->reset();
  EXPECT_LE((*pool)->max_records_in_use(), kBudget);
  EXPECT_EQ((*pool)->records_in_use(), 0u);
  EXPECT_TRUE((*pool)->governor()->health().ok());
}

}  // namespace
}  // namespace bgps
