// Stress layer for the live ingestion tier (ctest label: stress): a
// ~50k-record mixed-scenario corpus replayed as BMP wire traffic at
// high virtual speed into a pool::LiveSource feeding a deadline tenant,
// while two backfill tenants chew the same archive directly through the
// same governed pool. The live tenant's decoded stream must carry
// exactly the corpus's update content (multiset equality — the replay's
// cross-collector global merge legitimately reorders equal-timestamp
// records relative to the stream's per-file merge), the backfills must
// stay byte-identical to the synchronous reference, and the shared
// ledger must balance to zero.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

#include "broker/archive.hpp"
#include "pool/live_source.hpp"
#include "pool/stream_pool.hpp"
#include "sim/corpus.hpp"
#include "sim/replay.hpp"
#include "tests/live_test_util.hpp"

namespace bgps {
namespace {

namespace fs = std::filesystem;
using broker::DumpFileMeta;
using livetest::Drain;
using livetest::StreamRun;

// Corpus plus single-threaded reference runs, generated once per
// process (generation and the reference drains dominate the runtime).
struct Corpus {
  std::string root;
  std::vector<DumpFileMeta> all_files;
  std::vector<DumpFileMeta> updates_files;
  StreamRun updates_reference;  // direct read of the updates dumps
};

const Corpus& GetCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus;
    c->root = (fs::temp_directory_path() /
               ("bgps_livestress_" + std::to_string(::getpid()))).string();

    sim::CorpusOptions options;
    options.scenario = "mixed";
    options.duration = 2 * 3600;
    options.flaps_per_hour = 2600;  // sized to clear 50k records total
    options.seed = 7;
    auto stats = sim::GenerateCorpus(options, c->root);
    if (!stats.ok()) {
      ADD_FAILURE() << "corpus generation failed: "
                    << stats.status().ToString();
      return c;
    }

    broker::ArchiveIndex index(c->root);
    if (!index.Rescan().ok()) {
      ADD_FAILURE() << "corpus rescan failed";
      return c;
    }
    c->all_files = index.files();
    for (const auto& f : c->all_files)
      if (f.type == broker::DumpType::Updates) c->updates_files.push_back(f);

    core::BgpStream stream;
    livetest::VectorDataInterface di(c->updates_files);
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) {
      ADD_FAILURE() << "reference stream failed to start";
      return c;
    }
    c->updates_reference = Drain(stream);
    return c;
  }();
  return *corpus;
}

class CorpusCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(GetCorpus().root, ec);
  }
};
const auto* const kCleanup =
    ::testing::AddGlobalTestEnvironment(new CorpusCleanup);

TEST(LiveReplayStressTest, CorpusClearsTheFiftyThousandRecordBar) {
  const Corpus& corpus = GetCorpus();
  ASSERT_TRUE(corpus.updates_reference.status.ok());
  EXPECT_GE(corpus.updates_reference.records.size(), 50000u)
      << "corpus undersized — raise duration or flaps_per_hour";
  EXPECT_GT(corpus.updates_files.size(), 10u);
}

TEST(LiveReplayStressTest, LiveTenantPlusTwoBackfillsUnderOneLedger) {
  const Corpus& corpus = GetCorpus();
  ASSERT_FALSE(corpus.updates_files.empty());
  ASSERT_TRUE(corpus.updates_reference.status.ok());

  constexpr size_t kBudget = 512;
  auto pool = StreamPool::Create({.threads = 4, .record_budget = kBudget});
  ASSERT_TRUE(pool.ok());

  fs::path spool = fs::path(corpus.root) / ".live-spool";
  pool::LiveSource::Options sopt;
  sopt.spool_dir = spool.string();
  sopt.flush_records = 64;
  sopt.governor = (*pool)->governor();
  sopt.executor = (*pool)->executor();
  auto source = pool::LiveSource::Create(std::move(sopt));
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  auto live = (*pool)->CreateStream(
      livetest::LiveStreamOptions(),
      {.weight = 4, .deadline = true, .name = "live",
       .idle_reclaim_rounds = std::nullopt});
  live->SetLive(0);
  live->SetDataInterface((*source)->feed());
  ASSERT_TRUE(live->Start().ok());

  // Session thread: the whole corpus as BMP wire bytes, paced by a
  // virtual clock (all the merge and pacing arithmetic, no wall time).
  // A full governor parks the ingest mid-replay; the draining tenant
  // unparks it — the stress is that this happens thousands of times.
  Status replay_status = OkStatus();
  sim::ReplayStats replay_stats;
  std::thread session([&] {
    core::AcceleratedClock clock(4096.0, [](std::chrono::microseconds) {});
    sim::ReplayOptions ropt;
    ropt.archive_root = corpus.root;
    ropt.format = sim::ReplayFormat::Bmp;
    ropt.clock = &clock;
    auto stats =
        sim::ReplayArchive(ropt, [&](Timestamp, const Bytes& payload) {
          return (*source)->IngestBmp(payload);
        });
    if (stats.ok()) {
      replay_stats = *stats;
      replay_status = (*source)->Close();
    } else {
      replay_status = stats.status();
      (void)(*source)->Close();
    }
  });

  // Two weight-1 backfill tenants drain the same archive directly,
  // competing for the same ledger and workers the live tenant uses.
  std::vector<StreamRun> backfills(2);
  std::vector<std::thread> backfill_threads;
  for (size_t i = 0; i < backfills.size(); ++i) {
    backfill_threads.emplace_back([&, i] {
      auto stream = (*pool)->CreateStream(
          {}, {.weight = 1, .deadline = false,
               .name = "backfill-" + std::to_string(i),
               .idle_reclaim_rounds = std::nullopt});
      livetest::VectorDataInterface di(corpus.updates_files);
      stream->SetInterval(0, 4102444800);
      stream->SetDataInterface(&di);
      if (!stream->Start().ok()) {
        backfills[i].status = InvalidArgument("backfill failed to start");
        return;
      }
      backfills[i] = Drain(*stream);
    });
  }

  StreamRun live_run = Drain(*live);
  session.join();
  for (auto& t : backfill_threads) t.join();

  ASSERT_TRUE(replay_status.ok()) << replay_status.ToString();
  ASSERT_TRUE(live_run.status.ok()) << live_run.status.ToString();
  ASSERT_EQ((*source)->stats().corrupt_frames, 0u);
  EXPECT_EQ((*source)->stats().messages_decoded,
            replay_stats.records_replayed);

  // Backfills saw the archive as-is: byte-identical to the reference.
  for (size_t i = 0; i < backfills.size(); ++i) {
    ASSERT_TRUE(backfills[i].status.ok())
        << "backfill " << i << ": " << backfills[i].status.ToString();
    EXPECT_EQ(backfills[i].records, corpus.updates_reference.records)
        << "backfill " << i;
    EXPECT_EQ(backfills[i].elems, corpus.updates_reference.elems)
        << "backfill " << i;
  }

  // The live tenant carries the same decoded content. The replay's
  // global cross-collector merge may order equal-timestamp records
  // differently than the per-file stream merge, so compare as
  // multisets; the count must match exactly.
  auto live_elems = live_run.elems;
  auto ref_elems = corpus.updates_reference.elems;
  ASSERT_EQ(live_elems.size(), ref_elems.size());
  std::sort(live_elems.begin(), live_elems.end());
  std::sort(ref_elems.begin(), ref_elems.end());
  EXPECT_EQ(live_elems, ref_elems);

  // Bounded memory the whole way: the ledger never exceeded its budget
  // and balances to zero once everything is torn down.
  live.reset();
  source->reset();
  EXPECT_LE((*pool)->max_records_in_use(), kBudget);
  EXPECT_EQ((*pool)->records_in_use(), 0u);
  EXPECT_TRUE((*pool)->governor()->health().ok());
}

}  // namespace
}  // namespace bgps
