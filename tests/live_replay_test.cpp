// Accelerated-replay determinism: the same (corpus, format) replayed
// under a virtual clock must emit the identical payload sequence at any
// speed-up — pacing may only change *when* payloads arrive, never
// *what* or *in which order*. Plus end-to-end conformance: a corpus
// replayed as BMP wire traffic through pool::LiveSource must decode to
// the same elem stream as reading the archive directly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "broker/archive.hpp"
#include "pool/live_source.hpp"
#include "sim/corpus.hpp"
#include "sim/replay.hpp"
#include "tests/live_test_util.hpp"

namespace bgps {
namespace {

namespace fs = std::filesystem;
using livetest::Drain;
using livetest::StreamRun;

// One payload as the sink saw it: (virtual timestamp, wire bytes).
using Emitted = std::vector<std::pair<Timestamp, Bytes>>;

struct ReplayRun {
  sim::ReplayStats stats;
  Emitted payloads;
};

// A single-collector corpus shared (read-only) by every test in the
// suite: with one collector the archive's update windows do not
// overlap, so the replay's global merge order and a direct stream's
// merge order coincide and conformance can demand exact equality.
class LiveReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = new fs::path(fs::temp_directory_path() /
                         ("bgps_replay_" + std::to_string(::getpid())));
    sim::CorpusOptions opt;
    opt.scenario = "baseline";
    opt.rv_collectors = 1;
    opt.ris_collectors = 0;
    opt.vps_per_collector = 3;
    opt.duration = 900;
    opt.seed = 42;
    auto stats = sim::GenerateCorpus(opt, root_->string());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_GT(stats->update_messages, 0u);
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*root_, ec);
    delete root_;
    root_ = nullptr;
  }

  static ReplayRun Replay(sim::ReplayFormat format, double speedup,
                          core::ReplayClock* clock, size_t max_records = 0) {
    ReplayRun run;
    sim::ReplayOptions opt;
    opt.archive_root = root_->string();
    opt.format = format;
    opt.speedup = speedup;
    opt.clock = clock;
    opt.max_records = max_records;
    auto stats = sim::ReplayArchive(opt, [&](Timestamp ts, const Bytes& p) {
      run.payloads.emplace_back(ts, p);
      return OkStatus();
    });
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.ok()) run.stats = *stats;
    return run;
  }

  static fs::path* root_;
};

fs::path* LiveReplayTest::root_ = nullptr;

TEST_F(LiveReplayTest, BmpSequenceIdenticalAcrossSpeedups) {
  // No-op sleeper: the pacing arithmetic runs at every speed-up, wall
  // time passes at none of them.
  std::vector<ReplayRun> runs;
  for (double speedup : {1.0, 16.0, 256.0}) {
    core::AcceleratedClock clock(speedup,
                                 [](std::chrono::microseconds) {});
    runs.push_back(Replay(sim::ReplayFormat::Bmp, speedup, &clock));
  }
  ASSERT_GT(runs[0].payloads.size(), 100u);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].payloads, runs[0].payloads) << "speedup run " << i;
    EXPECT_EQ(runs[i].stats.records_replayed, runs[0].stats.records_replayed);
    EXPECT_EQ(runs[i].stats.updates, runs[0].stats.updates);
    EXPECT_EQ(runs[i].stats.state_changes, runs[0].stats.state_changes);
    EXPECT_EQ(runs[i].stats.skipped, runs[0].stats.skipped);
    EXPECT_EQ(runs[i].stats.first_ts, runs[0].stats.first_ts);
    EXPECT_EQ(runs[i].stats.last_ts, runs[0].stats.last_ts);
  }
  // Timestamps are non-decreasing: the k-way merge emits one global
  // timeline no matter how the corpus was sharded into files.
  for (size_t i = 1; i < runs[0].payloads.size(); ++i)
    EXPECT_LE(runs[0].payloads[i - 1].first, runs[0].payloads[i].first);
}

TEST_F(LiveReplayTest, ExaBgpSequenceIdenticalAcrossSpeedups) {
  core::ManualClock clock_a;
  core::ManualClock clock_b;
  ReplayRun a = Replay(sim::ReplayFormat::ExaBgp, 1.0, &clock_a);
  ReplayRun b = Replay(sim::ReplayFormat::ExaBgp, 4096.0, &clock_b);
  ASSERT_GT(a.payloads.size(), 100u);
  EXPECT_EQ(a.payloads, b.payloads);
  // Every payload is a JSON line, newline-free (framing adds it).
  for (const auto& [ts, p] : a.payloads) {
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), uint8_t('{'));
    EXPECT_EQ(std::count(p.begin(), p.end(), uint8_t('\n')), 0);
  }
}

TEST_F(LiveReplayTest, VirtualClockPacesToTheLastRecord) {
  core::ManualClock clock;
  ReplayRun run = Replay(sim::ReplayFormat::Bmp, 1.0, &clock);
  ASSERT_GT(run.stats.records_replayed, 0u);
  // The clock slept to every record's due time: after the run its
  // virtual now sits inside the last record's second.
  EXPECT_GE(clock.NowMicros(), int64_t(run.stats.last_ts) * 1'000'000);
  EXPECT_LT(clock.NowMicros(), int64_t(run.stats.last_ts + 1) * 1'000'000);
  EXPECT_GE(run.stats.last_ts, run.stats.first_ts);
}

TEST_F(LiveReplayTest, MaxRecordsStopsTheReplayEarly) {
  core::ManualClock clock;
  ReplayRun run = Replay(sim::ReplayFormat::Bmp, 1.0, &clock, 10);
  EXPECT_EQ(run.stats.records_replayed, 10u);
  EXPECT_EQ(run.payloads.size(), 10u);
}

TEST_F(LiveReplayTest, ReplayThroughLiveSourceMatchesDirectArchiveRead) {
  // Live path: replay the corpus as BMP wire bytes into a LiveSource,
  // then drain its feed.
  fs::path spool = *root_ / "spool";
  pool::LiveSource::Options sopt;
  sopt.spool_dir = spool.string();
  sopt.flush_records = 256;
  auto source = pool::LiveSource::Create(std::move(sopt));
  ASSERT_TRUE(source.ok());
  core::ManualClock clock;
  sim::ReplayOptions ropt;
  ropt.archive_root = root_->string();
  ropt.clock = &clock;
  auto stats =
      sim::ReplayArchive(ropt, [&](Timestamp, const Bytes& payload) {
        return (*source)->IngestBmp(payload);
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE((*source)->Close().ok());
  ASSERT_EQ((*source)->stats().corrupt_frames, 0u);
  EXPECT_EQ((*source)->stats().messages_decoded, stats->records_replayed);

  core::BgpStream live(livetest::LiveStreamOptions());
  live.SetLive(0);
  live.SetDataInterface((*source)->feed());
  ASSERT_TRUE(live.Start().ok());
  StreamRun live_run = Drain(live);
  ASSERT_TRUE(live_run.status.ok()) << live_run.status.ToString();

  // Direct path: stream the archive's updates dumps themselves.
  broker::ArchiveIndex index(root_->string());
  ASSERT_TRUE(index.Rescan().ok());
  std::vector<broker::DumpFileMeta> updates;
  for (const auto& f : index.files())
    if (f.type == broker::DumpType::Updates) updates.push_back(f);
  ASSERT_FALSE(updates.empty());
  livetest::VectorDataInterface di(updates);
  core::BgpStream direct;
  direct.SetInterval(0, 4102444800);
  direct.SetDataInterface(&di);
  ASSERT_TRUE(direct.Start().ok());
  StreamRun direct_run = Drain(direct);
  ASSERT_TRUE(direct_run.status.ok()) << direct_run.status.ToString();

  // Record annotations differ by design (collector "live", micro-dump
  // boundaries); the decoded elem stream must not.
  EXPECT_EQ(live_run.elems.size(), direct_run.elems.size());
  EXPECT_EQ(live_run.elems, direct_run.elems);
  EXPECT_EQ((*source)->stats().parks, 0u);  // no governor => no parking
}

}  // namespace
}  // namespace bgps
