// Live-path conformance layer: a BMP/exabgp session ingested through
// pool::LiveSource and consumed as a StreamPool deadline tenant must
// produce records and elems byte-identical to directly decoding the
// same payloads, with the governor ledger balancing to zero after
// teardown — the tentpole acceptance criterion of the live tier.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "exabgp/exabgp.hpp"
#include "pool/live_source.hpp"
#include "pool/stream_pool.hpp"
#include "tests/live_test_util.hpp"

namespace bgps {
namespace {

namespace fs = std::filesystem;
using livetest::Drain;
using livetest::StreamRun;

class LiveSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgps_live_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // Drains a plain (non-pool) live stream reading `feed`.
  StreamRun DrainFeed(core::LiveFeedInterface* feed) {
    core::BgpStream stream(livetest::LiveStreamOptions());
    stream.SetLive(0);
    stream.SetDataInterface(feed);
    EXPECT_TRUE(stream.Start().ok());
    return Drain(stream);
  }

  // Drains a single-file baseline archive through a plain stream.
  StreamRun DrainBaseline(const broker::DumpFileMeta& meta) {
    livetest::VectorDataInterface di({meta});
    core::BgpStream stream;
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    EXPECT_TRUE(stream.Start().ok());
    return Drain(stream);
  }

  fs::path dir_;
};

TEST_F(LiveSourceTest, CreateValidatesOptions) {
  pool::LiveSource::Options opt;
  auto no_dir = pool::LiveSource::Create(opt);
  ASSERT_FALSE(no_dir.ok());
  EXPECT_EQ(no_dir.status().message(), "LiveSource: spool_dir is required");

  opt.spool_dir = Path("spool");
  opt.flush_records = 0;
  auto no_flush = pool::LiveSource::Create(std::move(opt));
  ASSERT_FALSE(no_flush.ok());
  EXPECT_EQ(no_flush.status().message(),
            "LiveSource: flush_records must be >= 1");
}

TEST_F(LiveSourceTest, LiveFeedInterfaceServesPublicationOrder) {
  core::LiveFeedInterface feed;
  core::FilterSet filters;

  // Open + empty: retry_later, not end_of_stream.
  auto batch = feed.NextBatch(filters);
  EXPECT_TRUE(batch.retry_later);
  EXPECT_FALSE(batch.end_of_stream);
  EXPECT_TRUE(batch.files.empty());

  broker::DumpFileMeta a, b;
  a.path = "a.mrt";
  a.start = 100;
  b.path = "b.mrt";
  b.start = 50;  // published later, must still be served second
  feed.Push(a);
  feed.Push(b);
  EXPECT_EQ(feed.published(), 2u);

  // One file per batch, in publication order (not time order): the
  // consuming stream's determinism comes from the publisher's sequence.
  batch = feed.NextBatch(filters);
  ASSERT_EQ(batch.files.size(), 1u);
  EXPECT_EQ(batch.files[0].path, "a.mrt");
  batch = feed.NextBatch(filters);
  ASSERT_EQ(batch.files.size(), 1u);
  EXPECT_EQ(batch.files[0].path, "b.mrt");

  feed.Close();
  EXPECT_TRUE(feed.closed());
  feed.Push(a);  // dropped after Close
  batch = feed.NextBatch(filters);
  EXPECT_TRUE(batch.end_of_stream);
  EXPECT_EQ(feed.published(), 2u);
}

TEST_F(LiveSourceTest, BmpSessionByteIdenticalToDirectDecode) {
  auto frames = livetest::ScriptedBmpSession();

  // Live path: whole session in one ingest, single micro-dump.
  pool::LiveSource::Options opt;
  opt.spool_dir = Path("spool");
  opt.flush_records = 1000;  // flush only at Close
  auto source = pool::LiveSource::Create(std::move(opt));
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE((*source)->IngestBmp(livetest::EncodeSession(frames)).ok());
  ASSERT_TRUE((*source)->Close().ok());

  auto stats = (*source)->stats();
  EXPECT_EQ(stats.messages_decoded, frames.size());
  EXPECT_EQ(stats.fsm_records, 3u);  // two Peer Ups + one Peer Down
  EXPECT_EQ(stats.records_spooled, 7u);  // everything but the Initiation
  EXPECT_EQ(stats.dumps_published, 1u);
  EXPECT_EQ(stats.corrupt_frames, 0u);

  StreamRun live = DrainFeed((*source)->feed());
  ASSERT_TRUE(live.status.ok()) << live.status.ToString();

  // Baseline: direct decode of the same payloads, written as one dump.
  auto baseline_records = livetest::DirectMrtRecords(frames);
  ASSERT_EQ(baseline_records.size(), 7u);
  auto meta = livetest::WriteBaselineDump(baseline_records, Path("base.mrt"));
  StreamRun baseline = DrainBaseline(meta);
  ASSERT_TRUE(baseline.status.ok());

  // Byte-identity: full record and elem fingerprints, dump_time and
  // position included.
  EXPECT_EQ(live.records, baseline.records);
  EXPECT_EQ(live.elems, baseline.elems);
  EXPECT_EQ(live.records.size(), 7u);
}

TEST_F(LiveSourceTest, BmpSessionThroughPoolDeadlineTenant) {
  auto frames = livetest::ScriptedBmpSession();

  auto pool = StreamPool::Create({.threads = 2, .record_budget = 64});
  ASSERT_TRUE(pool.ok());

  pool::LiveSource::Options opt;
  opt.spool_dir = Path("spool");
  opt.flush_records = 1000;
  opt.governor = (*pool)->governor();
  opt.executor = (*pool)->executor();
  auto source = pool::LiveSource::Create(std::move(opt));
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->IngestBmp(livetest::EncodeSession(frames)).ok());
  ASSERT_TRUE((*source)->Close().ok());

  StreamRun live;
  {
    auto stream = (*pool)->CreateStream(
        livetest::LiveStreamOptions(),
        {.weight = 4, .deadline = true, .name = "live",
         .idle_reclaim_rounds = std::nullopt});
    stream->SetLive(0);
    stream->SetDataInterface((*source)->feed());
    ASSERT_TRUE(stream->Start().ok());
    live = Drain(*stream);
  }
  ASSERT_TRUE(live.status.ok()) << live.status.ToString();

  auto meta = livetest::WriteBaselineDump(livetest::DirectMrtRecords(frames),
                                          Path("base.mrt"));
  StreamRun baseline = DrainBaseline(meta);

  EXPECT_EQ(live.records, baseline.records);
  EXPECT_EQ(live.elems, baseline.elems);

  // Teardown accounting: source released its leases at Close, the
  // tenant drained everything — the shared ledger balances to zero.
  source->reset();
  EXPECT_EQ((*pool)->records_in_use(), 0u);
  EXPECT_TRUE((*pool)->governor()->health().ok());
}

TEST_F(LiveSourceTest, ExaBgpSessionByteIdenticalToDirectDecode) {
  // An exabgp session: state up, three updates, state down.
  std::vector<exabgp::ExaBgpMessage> msgs;
  {
    exabgp::ExaBgpMessage up;
    up.kind = exabgp::ExaBgpMessage::Kind::State;
    up.time = 1451606400;
    up.peer_address = *IpAddress::Parse("10.0.0.9");
    up.peer_asn = 65009;
    up.local_asn = 64512;
    up.state = bgp::FsmState::Established;
    msgs.push_back(up);
    for (int i = 0; i < 3; ++i) {
      exabgp::ExaBgpMessage u;
      u.kind = exabgp::ExaBgpMessage::Kind::Update;
      u.time = 1451606401 + i;
      u.peer_address = *IpAddress::Parse("10.0.0.9");
      u.peer_asn = 65009;
      u.local_asn = 64512;
      u.update.attrs.as_path = bgp::AsPath::Sequence({65009, 3356});
      u.update.attrs.next_hop = *IpAddress::Parse("10.0.0.9");
      u.update.announced = {livetest::Pfx("10." + std::to_string(i) +
                                          ".0.0/16")};
      msgs.push_back(u);
    }
    exabgp::ExaBgpMessage down = up;
    down.time = 1451606405;
    down.state = bgp::FsmState::Idle;
    msgs.push_back(down);
  }

  pool::LiveSource::Options opt;
  opt.spool_dir = Path("spool");
  opt.flush_records = 1000;
  auto source = pool::LiveSource::Create(std::move(opt));
  ASSERT_TRUE(source.ok());
  for (const auto& m : msgs)
    ASSERT_TRUE((*source)->IngestExaBgpLine(exabgp::EncodeLine(m)).ok());
  ASSERT_TRUE((*source)->Close().ok());

  auto stats = (*source)->stats();
  EXPECT_EQ(stats.messages_decoded, msgs.size());
  EXPECT_EQ(stats.fsm_records, 2u);

  StreamRun live = DrainFeed((*source)->feed());
  ASSERT_TRUE(live.status.ok());

  // Baseline: EncodeAsMrt of each decoded line — the direct transcode.
  std::vector<std::pair<Timestamp, Bytes>> baseline_records;
  for (const auto& m : msgs) {
    auto rt = exabgp::DecodeLine(exabgp::EncodeLine(m));
    ASSERT_TRUE(rt.ok());
    baseline_records.emplace_back(rt->time, exabgp::EncodeAsMrt(*rt));
  }
  auto meta = livetest::WriteBaselineDump(baseline_records, Path("base.mrt"));
  StreamRun baseline = DrainBaseline(meta);
  ASSERT_TRUE(baseline.status.ok());

  EXPECT_EQ(live.records, baseline.records);
  EXPECT_EQ(live.elems, baseline.elems);
  EXPECT_EQ(live.records.size(), msgs.size());
}

TEST_F(LiveSourceTest, MalformedExaBgpLinesCountedNotFatal) {
  pool::LiveSource::Options opt;
  opt.spool_dir = Path("spool");
  auto source = pool::LiveSource::Create(std::move(opt));
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE((*source)->IngestExaBgpLine("this is not json").ok());
  EXPECT_TRUE((*source)->IngestExaBgpLine("{}").ok());
  EXPECT_TRUE((*source)->IngestExaBgpLine("").ok());  // blank: ignored
  auto stats = (*source)->stats();
  EXPECT_EQ(stats.corrupt_frames, 2u);
  EXPECT_EQ(stats.messages_decoded, 0u);
  ASSERT_TRUE((*source)->Close().ok());
  EXPECT_EQ((*source)->stats().dumps_published, 0u);
}

TEST_F(LiveSourceTest, FlushBoundariesDoNotChangeTheElemStream) {
  auto frames = livetest::ScriptedBmpSession();

  auto run_with_flush = [&](size_t flush_records) {
    pool::LiveSource::Options opt;
    opt.spool_dir = Path("spool-" + std::to_string(flush_records));
    opt.flush_records = flush_records;
    auto source = pool::LiveSource::Create(std::move(opt));
    EXPECT_TRUE(source.ok());
    EXPECT_TRUE((*source)->IngestBmp(livetest::EncodeSession(frames)).ok());
    EXPECT_TRUE((*source)->Close().ok());
    return std::make_pair(DrainFeed((*source)->feed()),
                          (*source)->stats().dumps_published);
  };

  auto [one_dump, n1] = run_with_flush(1000);
  auto [micro_dumps, n2] = run_with_flush(2);
  EXPECT_EQ(n1, 1u);
  EXPECT_EQ(n2, 4u);  // 7 records in dumps of 2

  // Micro-dump boundaries move dump_time/position annotations, but the
  // record timeline and every elem must be unchanged.
  ASSERT_EQ(one_dump.records.size(), micro_dumps.records.size());
  for (size_t i = 0; i < one_dump.records.size(); ++i) {
    EXPECT_EQ(std::get<0>(one_dump.records[i]),
              std::get<0>(micro_dumps.records[i]));  // timestamp
    EXPECT_EQ(std::get<3>(one_dump.records[i]),
              std::get<3>(micro_dumps.records[i]));  // status
  }
  EXPECT_EQ(one_dump.elems, micro_dumps.elems);
}

TEST_F(LiveSourceTest, PeerLocalAsnLearnedFromPeerUp) {
  auto frames = livetest::ScriptedBmpSession();
  pool::LiveSource::Options opt;
  opt.spool_dir = Path("spool");
  opt.flush_records = 1000;
  auto source = pool::LiveSource::Create(std::move(opt));
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->IngestBmp(livetest::EncodeSession(frames)).ok());
  ASSERT_TRUE((*source)->Close().ok());

  auto scan = mrt::ScanFile(Path("spool") + "/live-0.mrt");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->messages.size(), 7u);
  // Peer 1's update carries the local ASN learned from its Peer Up;
  // peer 2's carries its own.
  const auto& m1 = std::get<mrt::Bgp4mpMessage>(scan->messages[2].body);
  EXPECT_EQ(m1.peer_asn, 65001u);
  EXPECT_EQ(m1.local_asn, 64512u);
  const auto& m2 = std::get<mrt::Bgp4mpMessage>(scan->messages[3].body);
  EXPECT_EQ(m2.peer_asn, 65002u);
  EXPECT_EQ(m2.local_asn, 64513u);
  // The Peer Down maps to a state change for the right peer.
  const auto& sc = std::get<mrt::Bgp4mpStateChange>(scan->messages[5].body);
  EXPECT_EQ(sc.peer_asn, 65002u);
  EXPECT_EQ(sc.new_state, bgp::FsmState::Idle);
}

TEST_F(LiveSourceTest, IngestAfterCloseRejected) {
  pool::LiveSource::Options opt;
  opt.spool_dir = Path("spool");
  auto source = pool::LiveSource::Create(std::move(opt));
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->Close().ok());
  ASSERT_TRUE((*source)->Close().ok());  // idempotent
  Bytes some{1, 2, 3};
  EXPECT_FALSE((*source)->IngestBmp(some).ok());
  EXPECT_FALSE((*source)->IngestExaBgpLine("{}").ok());
}

}  // namespace
}  // namespace bgps
