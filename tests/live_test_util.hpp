// Shared fixtures for the live ingestion tier's test layer
// (live_source_test, live_fault_test, live_replay_test and the stress
// variant): a scripted BMP session, an independent direct-decode
// baseline (re-deriving the frames -> MRT mapping without LiveSource,
// so the conformance tests compare two implementations, not one with
// itself), and stream-drain fingerprinting that includes dump_time and
// position — the live path must be *byte-identical* to the baseline,
// not merely equivalent.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bmp/bmp.hpp"
#include "broker/archive.hpp"
#include "core/stream.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace bgps::livetest {

// (timestamp, collector, dump_type, status, position, dump_time):
// everything the record surface exposes besides the decoded body, which
// the elem fingerprint covers.
using RecordFp = std::tuple<Timestamp, std::string, int, int, int, Timestamp>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct StreamRun {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
  Status status;
};

inline StreamRun Drain(core::BgpStream& stream) {
  StreamRun out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position), rec->dump_time);
    for (const auto& e : stream.Elems(*rec)) {
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  out.status = stream.status();
  return out;
}

class VectorDataInterface : public core::DataInterface {
 public:
  explicit VectorDataInterface(std::vector<broker::DumpFileMeta> files)
      : files_(std::move(files)) {}
  core::DataBatch NextBatch(const core::FilterSet&) override {
    core::DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<broker::DumpFileMeta> files_;
  bool served_ = false;
};

inline Prefix Pfx(const std::string& s) { return *Prefix::Parse(s); }

inline bmp::PeerHeader LivePeer(const std::string& addr, uint32_t asn,
                                Timestamp ts) {
  bmp::PeerHeader ph;
  ph.peer_address = *IpAddress::Parse(addr);
  ph.peer_asn = asn;
  ph.peer_bgp_id = asn;
  ph.timestamp = ts;
  return ph;
}

// A deterministic two-peer BMP session: Initiation (no record), both
// peers come up (learning distinct local ASNs), interleaved
// announcements and a withdrawal, one peer goes down. Covers every
// record-producing message type plus the per-peer local-ASN state.
inline std::vector<bmp::BmpMessage> ScriptedBmpSession() {
  constexpr Timestamp kT0 = 1451606400;  // 2016-01-01T00:00:00Z
  std::vector<bmp::BmpMessage> frames;

  bmp::InfoTlvs init;
  init.type = bmp::MessageType::Initiation;
  init.sys_name = "edge-1";
  frames.push_back({init});

  bmp::PeerUp up1;
  up1.peer = LivePeer("10.0.0.1", 65001, kT0);
  up1.local_address = *IpAddress::Parse("192.0.2.1");
  up1.local_asn = 64512;
  frames.push_back({up1});

  bmp::PeerUp up2;
  up2.peer = LivePeer("10.0.0.2", 65002, kT0 + 1);
  up2.local_address = *IpAddress::Parse("192.0.2.1");
  up2.local_asn = 64513;
  frames.push_back({up2});

  bmp::RouteMonitoring rm1;
  rm1.peer = LivePeer("10.0.0.1", 65001, kT0 + 2);
  rm1.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
  rm1.update.attrs.next_hop = *IpAddress::Parse("10.0.0.1");
  rm1.update.attrs.communities = {bgp::Community(3356, 100)};
  rm1.update.announced = {Pfx("198.18.0.0/15"), Pfx("192.0.2.0/24")};
  frames.push_back({rm1});

  bmp::RouteMonitoring rm2;
  rm2.peer = LivePeer("10.0.0.2", 65002, kT0 + 3);
  rm2.update.attrs.as_path = bgp::AsPath::Sequence({65002, 174});
  rm2.update.attrs.next_hop = *IpAddress::Parse("10.0.0.2");
  rm2.update.announced = {Pfx("203.0.113.0/24")};
  frames.push_back({rm2});

  bmp::RouteMonitoring rm3;
  rm3.peer = LivePeer("10.0.0.1", 65001, kT0 + 4);
  rm3.update.withdrawn = {Pfx("192.0.2.0/24")};
  frames.push_back({rm3});

  bmp::PeerDown down2;
  down2.peer = LivePeer("10.0.0.2", 65002, kT0 + 5);
  down2.reason = bmp::PeerDownReason::RemoteNoNotification;
  frames.push_back({down2});

  bmp::RouteMonitoring rm4;
  rm4.peer = LivePeer("10.0.0.1", 65001, kT0 + 6);
  rm4.update.attrs.as_path = bgp::AsPath::Sequence({65001, 6939});
  rm4.update.attrs.next_hop = *IpAddress::Parse("10.0.0.1");
  rm4.update.announced = {Pfx("198.51.100.0/24")};
  frames.push_back({rm4});

  return frames;
}

inline Bytes EncodeSession(const std::vector<bmp::BmpMessage>& frames) {
  Bytes wire;
  for (const auto& f : frames) {
    Bytes b = bmp::Encode(f);
    wire.insert(wire.end(), b.begin(), b.end());
  }
  return wire;
}

// Independent reimplementation of the session -> MRT mapping (per-peer
// local-ASN learning included): what a direct decode of the same
// payloads produces. LiveSource's output must match this byte for byte.
inline std::vector<std::pair<Timestamp, Bytes>> DirectMrtRecords(
    const std::vector<bmp::BmpMessage>& frames) {
  std::map<std::pair<std::string, uint32_t>, uint32_t> local_asn;
  std::vector<std::pair<Timestamp, Bytes>> out;
  for (const auto& f : frames) {
    const bmp::PeerHeader* ph = nullptr;
    if (f.is_route_monitoring())
      ph = &std::get<bmp::RouteMonitoring>(f.body).peer;
    else if (f.is_peer_down())
      ph = &std::get<bmp::PeerDown>(f.body).peer;
    else if (f.is_peer_up())
      ph = &std::get<bmp::PeerUp>(f.body).peer;
    bgp::Asn hint = 0;
    if (ph != nullptr) {
      auto key = std::make_pair(ph->peer_address.ToString(),
                                uint32_t(ph->peer_asn));
      if (f.is_peer_up())
        local_asn[key] = uint32_t(std::get<bmp::PeerUp>(f.body).local_asn);
      auto it = local_asn.find(key);
      if (it != local_asn.end()) hint = it->second;
    }
    auto mrt_msg = bmp::ToMrt(f, hint);
    if (!mrt_msg) continue;
    Bytes encoded =
        mrt_msg->is_message()
            ? mrt::EncodeBgp4mpUpdate(
                  mrt_msg->timestamp,
                  std::get<mrt::Bgp4mpMessage>(mrt_msg->body))
            : mrt::EncodeBgp4mpStateChange(
                  mrt_msg->timestamp,
                  std::get<mrt::Bgp4mpStateChange>(mrt_msg->body));
    out.emplace_back(mrt_msg->timestamp, std::move(encoded));
  }
  return out;
}

// Writes the baseline records as one dump file with the same provenance
// a LiveSource micro-dump carries, so the two streams' records agree on
// every annotation (collector, dump_time, position).
inline broker::DumpFileMeta WriteBaselineDump(
    const std::vector<std::pair<Timestamp, Bytes>>& records,
    const std::string& path, const std::string& project = "live",
    const std::string& collector = "live") {
  mrt::MrtFileWriter writer;
  EXPECT_TRUE(writer.Open(path).ok());
  Timestamp first = records.empty() ? 0 : records.front().first;
  Timestamp last = first;
  for (const auto& [ts, encoded] : records) {
    if (ts < first) first = ts;
    if (ts > last) last = ts;
    EXPECT_TRUE(writer.Write(encoded).ok());
  }
  EXPECT_TRUE(writer.Close().ok());
  broker::DumpFileMeta meta;
  meta.project = project;
  meta.collector = collector;
  meta.type = broker::DumpType::Updates;
  meta.start = first;
  meta.duration = last - first;
  meta.publish_time = last;
  meta.path = path;
  return meta;
}

// Live-tenant stream options: a fast poll (the feed is usually already
// closed in tests) plus a poll cap as a hang backstop — a bug that
// never closes the feed fails the test instead of wedging ctest.
inline core::BgpStream::Options LiveStreamOptions() {
  core::BgpStream::Options opt;
  opt.poll_wait = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  opt.max_consecutive_polls = 30000;  // ~30 s of empty polls
  return opt;
}

}  // namespace bgps::livetest
