// Sorted-stream generation unit tests (paper §3.3.4): the overlapping-
// subset partition and the multi-way merge tie-break rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>

#include "core/merge.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace bgps::core {
namespace {

broker::DumpFileMeta File(Timestamp start, Timestamp duration,
                          broker::DumpType type = broker::DumpType::Updates,
                          std::string path = "") {
  broker::DumpFileMeta f;
  f.project = "test";
  f.collector = "c0";
  f.type = type;
  f.start = start;
  f.duration = duration;
  f.path = path.empty() ? "mem://" + std::to_string(start) : std::move(path);
  return f;
}

// Partition invariants GroupOverlapping must uphold regardless of input:
// the subsets are a permutation-free split of the sorted input, each
// internally sorted, ordered by earliest start, and time-disjoint (a
// subset starts at or after the latest end of its predecessor).
void CheckPartition(
    std::vector<broker::DumpFileMeta> input,
    const std::vector<std::vector<broker::DumpFileMeta>>& subsets) {
  std::sort(input.begin(), input.end());
  std::vector<broker::DumpFileMeta> flattened;
  Timestamp prev_max_end = 0;
  for (size_t k = 0; k < subsets.size(); ++k) {
    const auto& subset = subsets[k];
    ASSERT_FALSE(subset.empty());
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
    if (k > 0) {
      EXPECT_GE(subset.front().start, prev_max_end)
          << "subset " << k << " overlaps its predecessor";
    }
    for (const auto& f : subset) {
      prev_max_end = std::max(prev_max_end, f.end());
      flattened.push_back(f);
    }
  }
  EXPECT_EQ(flattened, input);
}

TEST(GroupOverlappingTest, EmptyInput) {
  EXPECT_TRUE(GroupOverlapping({}).empty());
}

TEST(GroupOverlappingTest, SingleFile) {
  auto subsets = GroupOverlapping({File(1000, 300)});
  ASSERT_EQ(subsets.size(), 1u);
  ASSERT_EQ(subsets[0].size(), 1u);
  EXPECT_EQ(subsets[0][0].start, 1000);
}

TEST(GroupOverlappingTest, FullyDisjointFilesGetOneSubsetEach) {
  std::vector<broker::DumpFileMeta> files = {
      File(3000, 300), File(1000, 300), File(2000, 300), File(4000, 300)};
  auto subsets = GroupOverlapping(files);
  ASSERT_EQ(subsets.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(subsets[k].size(), 1u);
    EXPECT_EQ(subsets[k][0].start, Timestamp(1000 * (k + 1)));
  }
  CheckPartition(files, subsets);
}

TEST(GroupOverlappingTest, AllSpanningFileCollapsesToOneSubset) {
  // One RIB-style dump covering the whole window chains otherwise
  // disjoint updates dumps into a single subset.
  std::vector<broker::DumpFileMeta> files = {
      File(1000, 300), File(2000, 300), File(3000, 300),
      File(500, 5000, broker::DumpType::Rib)};
  auto subsets = GroupOverlapping(files);
  ASSERT_EQ(subsets.size(), 1u);
  EXPECT_EQ(subsets[0].size(), 4u);
  CheckPartition(files, subsets);
}

TEST(GroupOverlappingTest, TouchingIntervalsDoNotOverlap) {
  // [0,300) and [300,600) share only the boundary instant: half-open
  // intervals, so they belong to different subsets.
  auto subsets = GroupOverlapping({File(0, 300), File(300, 300)});
  EXPECT_EQ(subsets.size(), 2u);
}

TEST(GroupOverlappingTest, RandomizedFiveHundredFilesStaySmallAndOrdered) {
  // 50 disjoint time clusters of 10 files each (the paper reports ~500-
  // file broker responses collapsing into bounded subsets). Files within
  // a cluster overlap; clusters are separated by dead time.
  std::mt19937 rng(20160301);
  std::vector<broker::DumpFileMeta> files;
  constexpr Timestamp kClusterSpacing = 100000;
  for (int cluster = 0; cluster < 50; ++cluster) {
    Timestamp base = Timestamp(cluster) * kClusterSpacing;
    for (int i = 0; i < 10; ++i) {
      Timestamp start = base + rng() % 2000;
      Timestamp duration = 100 + rng() % 2000;  // stays inside the cluster
      files.push_back(File(start, duration));
    }
  }
  std::shuffle(files.begin(), files.end(), rng);

  auto subsets = GroupOverlapping(files);
  CheckPartition(files, subsets);
  // Clusters never merge, so no subset can exceed a cluster's population.
  EXPECT_GE(subsets.size(), 50u);
  size_t max_subset = 0;
  for (const auto& s : subsets) max_subset = std::max(max_subset, s.size());
  EXPECT_LE(max_subset, 10u);
}

// --- MultiWayMerge tie-break (updates before RIB at equal timestamps) ------

class MergeTieBreakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("merge_tiebreak_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteUpdatesFile(Timestamp ts, int count) {
    std::string path = (dir_ / "updates.mrt").string();
    mrt::MrtFileWriter w;
    EXPECT_TRUE(w.Open(path).ok());
    for (int i = 0; i < count; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = 65001;
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, 0, 0, 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356});
      m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(uint32_t(10 + i) << 24), 16));
      EXPECT_TRUE(w.Write(mrt::EncodeBgp4mpUpdate(ts, m)).ok());
    }
    EXPECT_TRUE(w.Close().ok());
    return path;
  }

  std::string WriteRibFile(Timestamp ts, int count) {
    std::string path = (dir_ / "rib.mrt").string();
    mrt::MrtFileWriter w;
    EXPECT_TRUE(w.Open(path).ok());
    mrt::PeerIndexTable pit;
    pit.collector_bgp_id = 0x0a000001;
    mrt::PeerEntry pe;
    pe.bgp_id = 0x0a000002;
    pe.address = IpAddress::V4(10, 0, 0, 2);
    pe.asn = 65001;
    pit.peers.push_back(pe);
    EXPECT_TRUE(w.Write(mrt::EncodePeerIndexTable(ts, pit)).ok());
    for (int i = 0; i < count; ++i) {
      mrt::RibPrefix rib;
      rib.sequence = uint32_t(i);
      rib.prefix = Prefix(IpAddress::V4(uint32_t(20 + i) << 24), 16);
      mrt::RibEntry e;
      e.peer_index = 0;
      e.originated_time = ts;
      e.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      e.attrs.next_hop = IpAddress::V4(10, 0, 0, 2);
      rib.entries.push_back(std::move(e));
      EXPECT_TRUE(w.Write(mrt::EncodeRibPrefix(ts, rib, IpFamily::V4)).ok());
    }
    EXPECT_TRUE(w.Close().ok());
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(MergeTieBreakTest, UpdatesSortBeforeRibAtEqualTimestamps) {
  constexpr Timestamp kTs = 1458000000;
  // RIB file listed FIRST so a naive index tie-break would emit it first;
  // the type rank must win.
  std::vector<broker::DumpFileMeta> files = {
      File(kTs, 300, broker::DumpType::Rib, WriteRibFile(kTs, 3)),
      File(kTs, 300, broker::DumpType::Updates, WriteUpdatesFile(kTs, 3))};

  MultiWayMerge merge(files);
  std::vector<DumpType> order;
  while (auto rec = merge.Next()) {
    EXPECT_EQ(rec->timestamp, kTs);
    order.push_back(rec->dump_type);
  }
  ASSERT_EQ(order.size(), 7u);  // 3 updates + peer index + 3 rib records
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(order[i], DumpType::Updates);
  for (size_t i = 3; i < 7; ++i) EXPECT_EQ(order[i], DumpType::Rib);
}

TEST_F(MergeTieBreakTest, PrefetchedMergeAppliesSameTieBreak) {
  constexpr Timestamp kTs = 1458000000;
  std::vector<broker::DumpFileMeta> files = {
      File(kTs, 300, broker::DumpType::Rib, WriteRibFile(kTs, 3)),
      File(kTs, 300, broker::DumpType::Updates, WriteUpdatesFile(kTs, 3))};

  std::vector<DecodedDump> dumps;
  for (const auto& f : files) dumps.push_back(DecodeDumpFile(f));
  MultiWayMerge merge(std::move(dumps));
  std::vector<DumpType> order;
  while (auto rec = merge.Next()) order.push_back(rec->dump_type);
  ASSERT_EQ(order.size(), 7u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(order[i], DumpType::Updates);
  for (size_t i = 3; i < 7; ++i) EXPECT_EQ(order[i], DumpType::Rib);
}

}  // namespace
}  // namespace bgps::core
