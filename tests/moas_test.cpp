#include <gtest/gtest.h>

#include "corsaro/corsaro.hpp"
#include "corsaro/moas.hpp"
#include "sim/presets.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::corsaro {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

core::Elem Announce(bgp::Asn peer, const Prefix& prefix, bgp::Asn origin,
                    Timestamp t = 100) {
  core::Elem e;
  e.type = core::ElemType::Announcement;
  e.time = t;
  e.peer_asn = peer;
  e.prefix = prefix;
  e.as_path = bgp::AsPath::Sequence({peer, 3356, origin});
  return e;
}

core::Elem Withdraw(bgp::Asn peer, const Prefix& prefix, Timestamp t = 100) {
  core::Elem e;
  e.type = core::ElemType::Withdrawal;
  e.time = t;
  e.peer_asn = peer;
  e.prefix = prefix;
  return e;
}

void Feed(MoasDetector& moas, const std::vector<core::Elem>& elems,
          const std::string& collector = "c1") {
  core::Record rec;
  rec.collector = collector;
  rec.dump_type = core::DumpType::Updates;
  RecordContext ctx{rec, elems, {}};
  moas.OnRecord(ctx);
}

TEST(MoasDetector, SingleOriginIsNotMoas) {
  MoasDetector moas;
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 100),
              Announce(2, P("10.0.0.0/8"), 100)});
  EXPECT_TRUE(moas.events().empty());
  EXPECT_TRUE(moas.current_moas().empty());
}

TEST(MoasDetector, TwoOriginsStartEvent) {
  MoasDetector moas;
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 100)});
  Feed(moas, {Announce(2, P("10.0.0.0/8"), 200, 150)});
  ASSERT_EQ(moas.events().size(), 1u);
  const auto& ev = moas.events()[0];
  EXPECT_TRUE(ev.started);
  EXPECT_EQ(ev.time, 150);
  EXPECT_EQ(ev.origins, (std::set<bgp::Asn>{100, 200}));
  EXPECT_EQ(moas.current_moas(), std::vector<Prefix>{P("10.0.0.0/8")});
}

TEST(MoasDetector, EndEventWhenHijackerWithdraws) {
  MoasDetector moas;
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 100)});
  Feed(moas, {Announce(2, P("10.0.0.0/8"), 200)});
  // VP2 reverts to the legitimate origin.
  Feed(moas, {Announce(2, P("10.0.0.0/8"), 100, 300)});
  ASSERT_EQ(moas.events().size(), 2u);
  EXPECT_FALSE(moas.events()[1].started);
  EXPECT_EQ(moas.events()[1].origins, std::set<bgp::Asn>{100});
  EXPECT_TRUE(moas.current_moas().empty());
}

TEST(MoasDetector, WithdrawalEndsMoas) {
  MoasDetector moas;
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 100)});
  Feed(moas, {Announce(2, P("10.0.0.0/8"), 200)});
  Feed(moas, {Withdraw(2, P("10.0.0.0/8"), 400)});
  ASSERT_EQ(moas.events().size(), 2u);
  EXPECT_FALSE(moas.events()[1].started);
}

TEST(MoasDetector, PerVpOriginOverwrite) {
  // The same VP flip-flopping between origins is MOAS only when two VPs
  // *simultaneously* see different origins.
  MoasDetector moas;
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 100)});
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 200)});  // same VP, new origin
  EXPECT_TRUE(moas.events().empty());
}

TEST(MoasDetector, SetsSeenAccumulate) {
  MoasDetector moas;
  Feed(moas, {Announce(1, P("10.0.0.0/8"), 100),
              Announce(2, P("10.0.0.0/8"), 200)});
  Feed(moas, {Announce(1, P("20.0.0.0/8"), 300),
              Announce(2, P("20.0.0.0/8"), 400)});
  EXPECT_EQ(moas.moas_sets().size(), 2u);
}

TEST(MoasDetector, DetectsScriptedHijackEndToEnd) {
  // The GARR scenario through the whole stack: the detector must fire for
  // the hijacked prefixes during the window and close afterwards.
  auto sc = sim::BuildGarrScenario(
      (std::filesystem::temp_directory_path() /
       ("moas_garr_" + std::to_string(::getpid())))
          .string(),
      2, 21);
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(sc.driver->archive_root(), bopt);
  core::BrokerDataInterface di(&broker);
  core::BgpStream stream;
  stream.SetInterval(sc.start, sc.end);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  BgpCorsaro engine(&stream, 300);
  auto moas = std::make_unique<MoasDetector>();
  MoasDetector* mp = moas.get();
  engine.AddPlugin(std::move(moas));
  engine.Run();

  ASSERT_EQ(sc.hijack_windows.size(), 1u);
  auto [w0, w1] = sc.hijack_windows[0];
  size_t starts_in_window = 0, ends_after = 0;
  for (const auto& ev : mp->events()) {
    if (ev.started) {
      EXPECT_GE(ev.time, w0);
      EXPECT_LT(ev.time, w1);
      EXPECT_EQ(ev.origins, (std::set<bgp::Asn>{sc.victim, sc.attacker}));
      ++starts_in_window;
    } else {
      EXPECT_GE(ev.time, w1);
      ++ends_after;
    }
  }
  EXPECT_EQ(starts_in_window, sc.hijacked.size());
  EXPECT_EQ(ends_after, sc.hijacked.size());
  EXPECT_TRUE(mp->current_moas().empty());
  std::filesystem::remove_all(sc.driver->archive_root());
}

}  // namespace
}  // namespace bgps::corsaro
