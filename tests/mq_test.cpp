#include <gtest/gtest.h>

#include <thread>

#include "analysis/graph.hpp"
#include "analysis/mapreduce.hpp"
#include "analysis/stats.hpp"
#include "mq/consumers.hpp"

namespace bgps::mq {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

TEST(Cluster, PublishFetchOffsets) {
  Cluster cluster;
  cluster.CreateTopic("t", 2);
  EXPECT_EQ(cluster.partitions("t"), 2u);
  Message m;
  m.key = "k";
  m.value = {1, 2, 3};
  EXPECT_EQ(cluster.Publish("t", 0, m), 0u);
  EXPECT_EQ(cluster.Publish("t", 0, m), 1u);
  EXPECT_EQ(cluster.Publish("t", 1, m), 0u);  // partitions independent
  EXPECT_EQ(cluster.EndOffset("t", 0), 2u);
  EXPECT_EQ(cluster.EndOffset("t", 1), 1u);

  auto msgs = *cluster.Fetch("t", 0, 0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0]->offset, 0u);
  EXPECT_EQ(msgs[1]->offset, 1u);
  EXPECT_EQ(cluster.Fetch("t", 0, 1)->size(), 1u);
  EXPECT_TRUE(cluster.Fetch("t", 0, 2)->empty());
  EXPECT_TRUE(cluster.Fetch("missing", 0, 0)->empty());
}

TEST(Cluster, AutoCreateOnPublish) {
  Cluster cluster;
  Message m;
  cluster.Publish("auto", 0, m);
  EXPECT_EQ(cluster.partitions("auto"), 1u);
  EXPECT_EQ(cluster.topics(), std::vector<std::string>{"auto"});
}

TEST(Cluster, ConsumerTracksPosition) {
  Cluster cluster;
  Message m;
  cluster.Publish("t", 0, m);
  cluster.Publish("t", 0, m);
  Consumer c(&cluster, "t");
  EXPECT_EQ(c.Poll()->size(), 2u);
  EXPECT_TRUE(c.Poll()->empty());
  cluster.Publish("t", 0, m);
  EXPECT_EQ(c.Poll()->size(), 1u);
  c.Seek(0);
  EXPECT_EQ(c.Poll()->size(), 3u);
}

TEST(Cluster, ConcurrentProducersAreSafe) {
  Cluster cluster;
  cluster.CreateTopic("t", 1);
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cluster] {
      for (int i = 0; i < kPerThread; ++i) {
        Message m;
        m.value = {uint8_t(i)};
        cluster.Publish("t", 0, m);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cluster.EndOffset("t", 0), size_t(kThreads * kPerThread));
  // Offsets are dense and unique.
  auto msgs = *cluster.Fetch("t", 0, 0);
  for (size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(msgs[i]->offset, i);
}

Message Msg(std::initializer_list<uint8_t> bytes) {
  Message m;
  m.value = bytes;
  return m;
}

TEST(Cluster, RetentionTruncatesOldMessages) {
  RetentionOptions keep3;
  keep3.max_messages = 3;
  Cluster cluster;
  cluster.CreateTopic("t", 1, keep3);
  for (uint8_t i = 0; i < 10; ++i) cluster.Publish("t", 0, Msg({i}));
  EXPECT_EQ(cluster.EndOffset("t", 0), 10u);
  EXPECT_EQ(cluster.FirstOffset("t", 0), 7u);
  auto msgs = *cluster.Fetch("t", 0, 7);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0]->value, Bytes({7}));
  EXPECT_EQ(msgs[2]->offset, 9u);
}

TEST(Cluster, RetentionByBytesKeepsNewestMessage) {
  RetentionOptions tiny;
  tiny.max_bytes = 4;
  Cluster cluster;
  cluster.CreateTopic("t", 1, tiny);
  // Each message exceeds the byte budget alone; the newest must survive
  // anyway so a publish is never silently dropped.
  cluster.Publish("t", 0, Msg({1, 2, 3, 4, 5, 6}));
  cluster.Publish("t", 0, Msg({7, 8, 9, 10, 11, 12}));
  EXPECT_EQ(cluster.FirstOffset("t", 0), 1u);
  EXPECT_EQ(cluster.RetainedBytes("t", 0), 6u);
  auto msgs = *cluster.Fetch("t", 0, 1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0]->value, Bytes({7, 8, 9, 10, 11, 12}));
}

TEST(Cluster, FetchBelowLowWatermarkIsTruncatedError) {
  RetentionOptions keep2;
  keep2.max_messages = 2;
  Cluster cluster;
  cluster.CreateTopic("t", 1, keep2);
  for (uint8_t i = 0; i < 5; ++i) cluster.Publish("t", 0, Msg({i}));
  EXPECT_EQ(cluster.FirstOffset("t", 0), 3u);
  auto below = cluster.Fetch("t", 0, 0);
  ASSERT_FALSE(below.ok());
  EXPECT_TRUE(IsTruncated(below.status()));
  // At or above the watermark is fine; past the end is empty, not error.
  EXPECT_TRUE(cluster.Fetch("t", 0, 3).ok());
  EXPECT_TRUE(cluster.Fetch("t", 0, 5)->empty());
}

TEST(Cluster, FetchByteBudgetCapsBatchButMakesProgress) {
  Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.Publish("t", 0, Msg({1, 2, 3, 4}));
  // Budget of 10 bytes fits two 4-byte messages.
  EXPECT_EQ(cluster.Fetch("t", 0, 0, 0, 10)->size(), 2u);
  // A budget smaller than any single message still returns one message —
  // a tiny budget must not wedge the consumer.
  auto one = *cluster.Fetch("t", 0, 0, 0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0]->offset, 0u);
}

TEST(Cluster, ConsumerPollHonorsByteBudgetAndTruncation) {
  RetentionOptions keep2;
  keep2.max_messages = 2;
  Cluster cluster;
  cluster.CreateTopic("t", 1, keep2);
  for (uint8_t i = 0; i < 6; ++i) cluster.Publish("t", 0, Msg({i, i}));
  Consumer c(&cluster, "t");
  // Position 0 fell below the low-watermark: explicit error, cursor parked.
  auto lost = c.Poll();
  ASSERT_FALSE(lost.ok());
  EXPECT_TRUE(IsTruncated(lost.status()));
  EXPECT_EQ(c.position(), 0u);
  // After re-seeking to the first retained offset, byte-budgeted polls
  // walk the log one message at a time.
  c.SeekToFirst();
  EXPECT_EQ(c.position(), 4u);
  EXPECT_EQ(c.Poll(0, 2)->size(), 1u);
  EXPECT_EQ(c.Poll(0, 2)->size(), 1u);
  EXPECT_TRUE(c.Poll(0, 2)->empty());
}

TEST(Cluster, PinsBlockTruncationUntilReleased) {
  RetentionOptions keep2;
  keep2.max_messages = 2;
  Cluster cluster;
  cluster.CreateTopic("t", 1, keep2);
  cluster.Publish("t", 0, Msg({0}));
  auto pin = cluster.CreatePin("t", 0, 0);
  ASSERT_TRUE(pin);
  for (uint8_t i = 1; i < 6; ++i) cluster.Publish("t", 0, Msg({i}));
  // The pin holds the low-watermark at 0 despite max_messages = 2.
  EXPECT_EQ(cluster.FirstOffset("t", 0), 0u);
  EXPECT_EQ(cluster.Fetch("t", 0, 0)->size(), 6u);
  // Advancing the pin releases the prefix below it.
  pin.Advance(4);
  EXPECT_EQ(cluster.FirstOffset("t", 0), 4u);
  // Releasing entirely lets retention catch up to its configured bound.
  pin.Release();
  EXPECT_EQ(cluster.FirstOffset("t", 0), 4u);
  EXPECT_TRUE(IsTruncated(cluster.Fetch("t", 0, 0).status()));
}

TEST(Cluster, EvictionHooksFireOnTruncationAndDestruction) {
  int evicted = 0;
  {
    RetentionOptions keep1;
    keep1.max_messages = 1;
    Cluster cluster;
    cluster.CreateTopic("t", 1, keep1);
    for (int i = 0; i < 3; ++i) {
      Message m;
      m.value = {uint8_t(i)};
      m.on_evict = [&evicted] { ++evicted; };
      cluster.Publish("t", 0, std::move(m));
    }
    EXPECT_EQ(evicted, 2);  // two truncated, one retained
  }
  EXPECT_EQ(evicted, 3);  // cluster teardown releases the survivor
}

corsaro::DiffCell MakeDiff(const std::string& collector, bgp::Asn peer,
                           const std::string& prefix, bool announced,
                           const std::string& path = "65001 15169") {
  corsaro::DiffCell d;
  d.vp = {collector, peer};
  d.prefix = P(prefix);
  d.cell.announced = announced;
  d.cell.as_path = *bgp::AsPath::Parse(path);
  d.cell.last_modified = 12345;
  d.cell.communities = {bgp::Community(65001, 1)};
  return d;
}

TEST(Serialize, DiffMessageRoundTrip) {
  RtDiffMessage msg;
  msg.collector = "rrc00";
  msg.bin_start = 1458000000;
  msg.diffs = {MakeDiff("rrc00", 65001, "10.0.0.0/8", true),
               MakeDiff("rrc00", 65002, "2001:db8::/32", false)};
  Bytes wire = EncodeDiffMessage(msg);
  EXPECT_EQ(*PeekKind(wire), RtMessageKind::Diff);
  auto decoded = DecodeDiffMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->collector, "rrc00");
  EXPECT_EQ(decoded->bin_start, 1458000000);
  ASSERT_EQ(decoded->diffs.size(), 2u);
  EXPECT_EQ(decoded->diffs[0].prefix, P("10.0.0.0/8"));
  EXPECT_TRUE(decoded->diffs[0].cell.announced);
  EXPECT_EQ(decoded->diffs[0].cell.as_path.ToString(), "65001 15169");
  EXPECT_FALSE(decoded->diffs[1].cell.announced);
  EXPECT_EQ(decoded->diffs[1].prefix.family(), IpFamily::V6);
}

TEST(Serialize, SnapshotMessageRoundTrip) {
  RtSnapshotMessage msg;
  msg.collector = "rv2";
  msg.bin_start = 100;
  msg.vp = {"rv2", 65009};
  msg.table[P("10.0.0.0/8")] = MakeDiff("rv2", 65009, "10.0.0.0/8", true).cell;
  msg.table[P("192.168.0.0/16")] =
      MakeDiff("rv2", 65009, "192.168.0.0/16", true).cell;
  Bytes wire = EncodeSnapshotMessage(msg);
  EXPECT_EQ(*PeekKind(wire), RtMessageKind::Snapshot);
  auto decoded = DecodeSnapshotMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->vp.peer, 65009u);
  EXPECT_EQ(decoded->table.size(), 2u);
}

TEST(Serialize, MetaMessageRoundTrip) {
  RtMetaMessage msg{"rrc00", 7777, 42};
  auto decoded = DecodeMetaMessage(EncodeMetaMessage(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->collector, "rrc00");
  EXPECT_EQ(decoded->bin_start, 7777);
  EXPECT_EQ(decoded->diff_cells, 42u);
}

TEST(Serialize, DecodeRejectsWrongKind) {
  RtMetaMessage msg{"c", 1, 2};
  Bytes wire = EncodeMetaMessage(msg);
  EXPECT_FALSE(DecodeDiffMessage(wire).ok());
  EXPECT_FALSE(PeekKind({}).ok());
}

void PublishMeta(Cluster& cluster, const std::string& collector,
                 Timestamp bin) {
  Message m;
  m.timestamp = bin;
  m.value = EncodeMetaMessage(RtMetaMessage{collector, bin, 1});
  cluster.Publish(kRtMetaTopic, 0, std::move(m));
}

TEST(SyncServers, CompletenessWaitsForAllCollectors) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"a", "b"});
  PublishMeta(cluster, "a", 100);
  EXPECT_EQ(sync.Poll(), 0u);  // b missing
  PublishMeta(cluster, "b", 100);
  EXPECT_EQ(sync.Poll(), 1u);
  auto markers = *cluster.Fetch("ready", 0, 0);
  ASSERT_EQ(markers.size(), 1u);
  auto marker = DecodeReadyMarker(markers[0]->value);
  ASSERT_TRUE(marker.ok());
  EXPECT_EQ(marker->bin_start, 100);
  EXPECT_EQ(marker->collectors_present.size(), 2u);
}

TEST(SyncServers, TimeoutReleasesIncompleteBins) {
  Cluster cluster;
  TimeoutSyncServer sync(&cluster, "ready", 600);
  PublishMeta(cluster, "a", 100);   // b never reports bin 100
  EXPECT_EQ(sync.Poll(), 0u);
  PublishMeta(cluster, "a", 400);
  EXPECT_EQ(sync.Poll(), 0u);       // only 300s of data-time passed
  PublishMeta(cluster, "a", 700);
  EXPECT_EQ(sync.Poll(), 1u);       // bin 100 timed out
  auto markers = *cluster.Fetch("ready", 0, 0);
  ASSERT_EQ(markers.size(), 1u);
  EXPECT_EQ(DecodeReadyMarker(markers[0]->value)->bin_start, 100);
}

// End-to-end consumer pipeline with hand-rolled diffs: two collectors,
// two VPs, an outage on one AS.
TEST(GlobalViewConsumer, DetectsPerAsOutage) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"c1", "c2"});
  GlobalViewConsumer::Options opt;
  opt.median_window = 4;
  GlobalViewConsumer consumer(
      &cluster, {"c1", "c2"}, "ready",
      [](bgp::Asn asn) { return asn == 15169 ? "US" : "IQ"; }, opt);

  auto publish_diffs = [&](const std::string& collector, Timestamp bin,
                           std::vector<corsaro::DiffCell> diffs) {
    RtDiffMessage msg;
    msg.collector = collector;
    msg.bin_start = bin;
    msg.diffs = std::move(diffs);
    Message m;
    m.timestamp = bin;
    m.value = EncodeDiffMessage(msg);
    cluster.Publish(RtTopic(collector), 0, std::move(m));
    PublishMeta(cluster, collector, bin);
  };

  // Bins 0..5: both VPs see both prefixes (one per origin AS).
  for (Timestamp bin = 0; bin < 6; ++bin) {
    std::vector<corsaro::DiffCell> d1, d2;
    if (bin == 0) {
      d1 = {MakeDiff("c1", 1, "10.0.0.0/8", true, "1 15169"),
            MakeDiff("c1", 1, "20.0.0.0/8", true, "1 64999")};
      d2 = {MakeDiff("c2", 2, "10.0.0.0/8", true, "2 15169"),
            MakeDiff("c2", 2, "20.0.0.0/8", true, "2 64999")};
    }
    publish_diffs("c1", bin, d1);
    publish_diffs("c2", bin, d2);
    sync.Poll();
    consumer.Poll();
  }
  // Bin 6: AS64999's prefix withdrawn everywhere (outage).
  publish_diffs("c1", 6, {MakeDiff("c1", 1, "20.0.0.0/8", false)});
  publish_diffs("c2", 6, {MakeDiff("c2", 2, "20.0.0.0/8", false)});
  sync.Poll();
  consumer.Poll();

  // Per-AS series recorded for both ASes; alarm raised for AS64999.
  bool saw_as64999 = false;
  for (const auto& row : consumer.as_rows()) {
    if (row.key == "AS64999" && row.visible_prefixes == 1) saw_as64999 = true;
  }
  EXPECT_TRUE(saw_as64999);
  bool alarm = false;
  for (const auto& a : consumer.alarms()) {
    // The per-country IQ series and the per-AS series both collapse.
    if (a.key == "AS64999" || a.key == "IQ") alarm = true;
  }
  EXPECT_TRUE(alarm);
  // The surviving AS keeps its prefix visible in the final bin.
  const auto* t = consumer.vp_table({"c1", 1});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 1u);
}

TEST(Analysis, AsGraphBfs) {
  analysis::AsGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(1, 4);  // shortcut
  g.AddEdge(5, 5);  // ignored self-loop
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  auto dist = g.Distances(1);
  EXPECT_EQ(dist[4], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_TRUE(g.Distances(99).empty());
}

TEST(Analysis, RunPartitionedKeepsOrder) {
  std::vector<int> parts;
  for (int i = 0; i < 64; ++i) parts.push_back(i);
  auto results =
      analysis::RunPartitioned(parts, [](int p) { return p * p; }, 8);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[size_t(i)], i * i);
}

TEST(Analysis, RunPartitionedOnExecutorKeepsOrder) {
  core::Executor executor({.threads = 3});
  std::vector<int> parts;
  for (int i = 0; i < 64; ++i) parts.push_back(i);
  auto results =
      analysis::RunPartitioned(parts, [](int p) { return p * p; }, &executor);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[size_t(i)], i * i);
  // Empty partition list short-circuits without touching the pool.
  auto none = analysis::RunPartitioned(std::vector<int>{},
                                       [](int p) { return p; }, &executor);
  EXPECT_TRUE(none.empty());
}

TEST(Analysis, RunPartitionedNullExecutorFallsBackToThreads) {
  std::vector<int> parts{1, 2, 3, 4, 5};
  auto results = analysis::RunPartitioned(
      parts, [](int p) { return p + 10; }, static_cast<core::Executor*>(nullptr));
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(results[i], int(i) + 11);
}

TEST(Analysis, Stats) {
  std::vector<int> v{5, 1, 9, 3, 7};
  EXPECT_DOUBLE_EQ(analysis::Mean(v), 5.0);
  EXPECT_EQ(analysis::Max(v), 9);
  EXPECT_DOUBLE_EQ(analysis::Median(v), 5.0);
  EXPECT_DOUBLE_EQ(analysis::Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::Quantile(v, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(analysis::Mean(std::vector<int>{}), 0.0);
}

}  // namespace
}  // namespace bgps::mq
