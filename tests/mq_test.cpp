#include <gtest/gtest.h>

#include <thread>

#include "analysis/graph.hpp"
#include "analysis/mapreduce.hpp"
#include "analysis/stats.hpp"
#include "mq/consumers.hpp"

namespace bgps::mq {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

TEST(Cluster, PublishFetchOffsets) {
  Cluster cluster;
  cluster.CreateTopic("t", 2);
  EXPECT_EQ(cluster.partitions("t"), 2u);
  Message m;
  m.key = "k";
  m.value = {1, 2, 3};
  EXPECT_EQ(cluster.Publish("t", 0, m), 0u);
  EXPECT_EQ(cluster.Publish("t", 0, m), 1u);
  EXPECT_EQ(cluster.Publish("t", 1, m), 0u);  // partitions independent
  EXPECT_EQ(cluster.EndOffset("t", 0), 2u);
  EXPECT_EQ(cluster.EndOffset("t", 1), 1u);

  auto msgs = cluster.Fetch("t", 0, 0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].offset, 0u);
  EXPECT_EQ(msgs[1].offset, 1u);
  EXPECT_EQ(cluster.Fetch("t", 0, 1).size(), 1u);
  EXPECT_TRUE(cluster.Fetch("t", 0, 2).empty());
  EXPECT_TRUE(cluster.Fetch("missing", 0, 0).empty());
}

TEST(Cluster, AutoCreateOnPublish) {
  Cluster cluster;
  Message m;
  cluster.Publish("auto", 0, m);
  EXPECT_EQ(cluster.partitions("auto"), 1u);
  EXPECT_EQ(cluster.topics(), std::vector<std::string>{"auto"});
}

TEST(Cluster, ConsumerTracksPosition) {
  Cluster cluster;
  Message m;
  cluster.Publish("t", 0, m);
  cluster.Publish("t", 0, m);
  Consumer c(&cluster, "t");
  EXPECT_EQ(c.Poll().size(), 2u);
  EXPECT_TRUE(c.Poll().empty());
  cluster.Publish("t", 0, m);
  EXPECT_EQ(c.Poll().size(), 1u);
  c.Seek(0);
  EXPECT_EQ(c.Poll().size(), 3u);
}

TEST(Cluster, ConcurrentProducersAreSafe) {
  Cluster cluster;
  cluster.CreateTopic("t", 1);
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cluster] {
      for (int i = 0; i < kPerThread; ++i) {
        Message m;
        m.value = {uint8_t(i)};
        cluster.Publish("t", 0, m);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cluster.EndOffset("t", 0), size_t(kThreads * kPerThread));
  // Offsets are dense and unique.
  auto msgs = cluster.Fetch("t", 0, 0);
  for (size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(msgs[i].offset, i);
}

corsaro::DiffCell MakeDiff(const std::string& collector, bgp::Asn peer,
                           const std::string& prefix, bool announced,
                           const std::string& path = "65001 15169") {
  corsaro::DiffCell d;
  d.vp = {collector, peer};
  d.prefix = P(prefix);
  d.cell.announced = announced;
  d.cell.as_path = *bgp::AsPath::Parse(path);
  d.cell.last_modified = 12345;
  d.cell.communities = {bgp::Community(65001, 1)};
  return d;
}

TEST(Serialize, DiffMessageRoundTrip) {
  RtDiffMessage msg;
  msg.collector = "rrc00";
  msg.bin_start = 1458000000;
  msg.diffs = {MakeDiff("rrc00", 65001, "10.0.0.0/8", true),
               MakeDiff("rrc00", 65002, "2001:db8::/32", false)};
  Bytes wire = EncodeDiffMessage(msg);
  EXPECT_EQ(*PeekKind(wire), RtMessageKind::Diff);
  auto decoded = DecodeDiffMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->collector, "rrc00");
  EXPECT_EQ(decoded->bin_start, 1458000000);
  ASSERT_EQ(decoded->diffs.size(), 2u);
  EXPECT_EQ(decoded->diffs[0].prefix, P("10.0.0.0/8"));
  EXPECT_TRUE(decoded->diffs[0].cell.announced);
  EXPECT_EQ(decoded->diffs[0].cell.as_path.ToString(), "65001 15169");
  EXPECT_FALSE(decoded->diffs[1].cell.announced);
  EXPECT_EQ(decoded->diffs[1].prefix.family(), IpFamily::V6);
}

TEST(Serialize, SnapshotMessageRoundTrip) {
  RtSnapshotMessage msg;
  msg.collector = "rv2";
  msg.bin_start = 100;
  msg.vp = {"rv2", 65009};
  msg.table[P("10.0.0.0/8")] = MakeDiff("rv2", 65009, "10.0.0.0/8", true).cell;
  msg.table[P("192.168.0.0/16")] =
      MakeDiff("rv2", 65009, "192.168.0.0/16", true).cell;
  Bytes wire = EncodeSnapshotMessage(msg);
  EXPECT_EQ(*PeekKind(wire), RtMessageKind::Snapshot);
  auto decoded = DecodeSnapshotMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->vp.peer, 65009u);
  EXPECT_EQ(decoded->table.size(), 2u);
}

TEST(Serialize, MetaMessageRoundTrip) {
  RtMetaMessage msg{"rrc00", 7777, 42};
  auto decoded = DecodeMetaMessage(EncodeMetaMessage(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->collector, "rrc00");
  EXPECT_EQ(decoded->bin_start, 7777);
  EXPECT_EQ(decoded->diff_cells, 42u);
}

TEST(Serialize, DecodeRejectsWrongKind) {
  RtMetaMessage msg{"c", 1, 2};
  Bytes wire = EncodeMetaMessage(msg);
  EXPECT_FALSE(DecodeDiffMessage(wire).ok());
  EXPECT_FALSE(PeekKind({}).ok());
}

void PublishMeta(Cluster& cluster, const std::string& collector,
                 Timestamp bin) {
  Message m;
  m.timestamp = bin;
  m.value = EncodeMetaMessage(RtMetaMessage{collector, bin, 1});
  cluster.Publish(kRtMetaTopic, 0, std::move(m));
}

TEST(SyncServers, CompletenessWaitsForAllCollectors) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"a", "b"});
  PublishMeta(cluster, "a", 100);
  EXPECT_EQ(sync.Poll(), 0u);  // b missing
  PublishMeta(cluster, "b", 100);
  EXPECT_EQ(sync.Poll(), 1u);
  auto markers = cluster.Fetch("ready", 0, 0);
  ASSERT_EQ(markers.size(), 1u);
  auto marker = DecodeReadyMarker(markers[0].value);
  ASSERT_TRUE(marker.ok());
  EXPECT_EQ(marker->bin_start, 100);
  EXPECT_EQ(marker->collectors_present.size(), 2u);
}

TEST(SyncServers, TimeoutReleasesIncompleteBins) {
  Cluster cluster;
  TimeoutSyncServer sync(&cluster, "ready", 600);
  PublishMeta(cluster, "a", 100);   // b never reports bin 100
  EXPECT_EQ(sync.Poll(), 0u);
  PublishMeta(cluster, "a", 400);
  EXPECT_EQ(sync.Poll(), 0u);       // only 300s of data-time passed
  PublishMeta(cluster, "a", 700);
  EXPECT_EQ(sync.Poll(), 1u);       // bin 100 timed out
  auto markers = cluster.Fetch("ready", 0, 0);
  ASSERT_EQ(markers.size(), 1u);
  EXPECT_EQ(DecodeReadyMarker(markers[0].value)->bin_start, 100);
}

// End-to-end consumer pipeline with hand-rolled diffs: two collectors,
// two VPs, an outage on one AS.
TEST(GlobalViewConsumer, DetectsPerAsOutage) {
  Cluster cluster;
  CompletenessSyncServer sync(&cluster, "ready", {"c1", "c2"});
  GlobalViewConsumer::Options opt;
  opt.median_window = 4;
  GlobalViewConsumer consumer(
      &cluster, {"c1", "c2"}, "ready",
      [](bgp::Asn asn) { return asn == 15169 ? "US" : "IQ"; }, opt);

  auto publish_diffs = [&](const std::string& collector, Timestamp bin,
                           std::vector<corsaro::DiffCell> diffs) {
    RtDiffMessage msg;
    msg.collector = collector;
    msg.bin_start = bin;
    msg.diffs = std::move(diffs);
    Message m;
    m.timestamp = bin;
    m.value = EncodeDiffMessage(msg);
    cluster.Publish(RtTopic(collector), 0, std::move(m));
    PublishMeta(cluster, collector, bin);
  };

  // Bins 0..5: both VPs see both prefixes (one per origin AS).
  for (Timestamp bin = 0; bin < 6; ++bin) {
    std::vector<corsaro::DiffCell> d1, d2;
    if (bin == 0) {
      d1 = {MakeDiff("c1", 1, "10.0.0.0/8", true, "1 15169"),
            MakeDiff("c1", 1, "20.0.0.0/8", true, "1 64999")};
      d2 = {MakeDiff("c2", 2, "10.0.0.0/8", true, "2 15169"),
            MakeDiff("c2", 2, "20.0.0.0/8", true, "2 64999")};
    }
    publish_diffs("c1", bin, d1);
    publish_diffs("c2", bin, d2);
    sync.Poll();
    consumer.Poll();
  }
  // Bin 6: AS64999's prefix withdrawn everywhere (outage).
  publish_diffs("c1", 6, {MakeDiff("c1", 1, "20.0.0.0/8", false)});
  publish_diffs("c2", 6, {MakeDiff("c2", 2, "20.0.0.0/8", false)});
  sync.Poll();
  consumer.Poll();

  // Per-AS series recorded for both ASes; alarm raised for AS64999.
  bool saw_as64999 = false;
  for (const auto& row : consumer.as_rows()) {
    if (row.key == "AS64999" && row.visible_prefixes == 1) saw_as64999 = true;
  }
  EXPECT_TRUE(saw_as64999);
  bool alarm = false;
  for (const auto& a : consumer.alarms()) {
    // The per-country IQ series and the per-AS series both collapse.
    if (a.key == "AS64999" || a.key == "IQ") alarm = true;
  }
  EXPECT_TRUE(alarm);
  // The surviving AS keeps its prefix visible in the final bin.
  const auto* t = consumer.vp_table({"c1", 1});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 1u);
}

TEST(Analysis, AsGraphBfs) {
  analysis::AsGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(1, 4);  // shortcut
  g.AddEdge(5, 5);  // ignored self-loop
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  auto dist = g.Distances(1);
  EXPECT_EQ(dist[4], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_TRUE(g.Distances(99).empty());
}

TEST(Analysis, RunPartitionedKeepsOrder) {
  std::vector<int> parts;
  for (int i = 0; i < 64; ++i) parts.push_back(i);
  auto results =
      analysis::RunPartitioned(parts, [](int p) { return p * p; }, 8);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[size_t(i)], i * i);
}

TEST(Analysis, RunPartitionedOnExecutorKeepsOrder) {
  core::Executor executor({.threads = 3});
  std::vector<int> parts;
  for (int i = 0; i < 64; ++i) parts.push_back(i);
  auto results =
      analysis::RunPartitioned(parts, [](int p) { return p * p; }, &executor);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[size_t(i)], i * i);
  // Empty partition list short-circuits without touching the pool.
  auto none = analysis::RunPartitioned(std::vector<int>{},
                                       [](int p) { return p; }, &executor);
  EXPECT_TRUE(none.empty());
}

TEST(Analysis, RunPartitionedNullExecutorFallsBackToThreads) {
  std::vector<int> parts{1, 2, 3, 4, 5};
  auto results = analysis::RunPartitioned(
      parts, [](int p) { return p + 10; }, static_cast<core::Executor*>(nullptr));
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(results[i], int(i) + 11);
}

TEST(Analysis, Stats) {
  std::vector<int> v{5, 1, 9, 3, 7};
  EXPECT_DOUBLE_EQ(analysis::Mean(v), 5.0);
  EXPECT_EQ(analysis::Max(v), 9);
  EXPECT_DOUBLE_EQ(analysis::Median(v), 5.0);
  EXPECT_DOUBLE_EQ(analysis::Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::Quantile(v, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(analysis::Mean(std::vector<int>{}), 0.0);
}

}  // namespace
}  // namespace bgps::mq
