// Property tests for the MRT write side (mrt/encode.hpp): seeded
// randomized records must survive encode -> DecodeRawRecord ->
// DecodeRecord exactly, under BOTH ASN encodings, and the corpus
// generator built on the encoders must be byte-deterministic per seed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>

#include "mrt/encode.hpp"
#include "sim/corpus.hpp"

namespace bgps::mrt {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kAsTrans = 23456;

bgp::Asn RandomAsn(std::mt19937_64& rng, bgp::AsnEncoding enc) {
  // TwoByte is lossy above 16 bits (AS_TRANS) — the round-trip property
  // only holds for representable ASNs; the lossy case is pinned in a
  // directed test below.
  if (enc == bgp::AsnEncoding::TwoByte) return 1 + rng() % 0xFFFE;
  return 1 + rng() % 0xFFFFFFFEu;
}

Prefix RandomV4Prefix(std::mt19937_64& rng) {
  uint8_t len = uint8_t(8 + rng() % 21);  // /8 .. /28
  return Prefix(IpAddress::V4(uint32_t(rng())), len);
}

Prefix RandomV6Prefix(std::mt19937_64& rng) {
  std::array<uint8_t, 16> b{};
  for (auto& x : b) x = uint8_t(rng());
  return Prefix(IpAddress::V6(b), uint8_t(16 + rng() % 49));  // /16 .. /64
}

// 1-3 segments; always at least one AS_SEQUENCE, sometimes an AS_SET in
// the middle (the "1 2 {3,4} 5" shape bgpdump renders).
bgp::AsPath RandomPath(std::mt19937_64& rng, bgp::AsnEncoding enc) {
  bgp::AsPath path;
  size_t segments = 1 + rng() % 3;
  for (size_t s = 0; s < segments; ++s) {
    bgp::AsPathSegment seg;
    seg.type = (s == 1 && segments > 1) ? bgp::SegmentType::AsSet
                                        : bgp::SegmentType::AsSequence;
    size_t n = 1 + rng() % (seg.type == bgp::SegmentType::AsSet ? 4 : 6);
    for (size_t i = 0; i < n; ++i) seg.asns.push_back(RandomAsn(rng, enc));
    path.append_segment(std::move(seg));
  }
  return path;
}

bgp::Communities RandomCommunities(std::mt19937_64& rng) {
  bgp::Communities cs;
  size_t n = rng() % 6;
  for (size_t i = 0; i < n; ++i)
    cs.push_back(bgp::Community(uint16_t(rng()), uint16_t(rng())));
  return cs;
}

Bgp4mpMessage RandomUpdate(std::mt19937_64& rng, bgp::AsnEncoding enc) {
  Bgp4mpMessage msg;
  msg.peer_asn = RandomAsn(rng, enc);
  msg.local_asn = RandomAsn(rng, enc);
  msg.peer_address = IpAddress::V4(uint32_t(rng()));
  msg.local_address = IpAddress::V4(uint32_t(rng()));
  size_t announced = rng() % 4, withdrawn = rng() % 3;
  if (announced + withdrawn == 0) announced = 1;
  for (size_t i = 0; i < withdrawn; ++i)
    msg.update.withdrawn.push_back(RandomV4Prefix(rng));
  if (announced > 0) {
    msg.update.attrs.origin = bgp::Origin::Igp;
    msg.update.attrs.as_path = RandomPath(rng, enc);
    msg.update.attrs.next_hop = IpAddress::V4(uint32_t(rng()));
    msg.update.attrs.communities = RandomCommunities(rng);
    for (size_t i = 0; i < announced; ++i)
      msg.update.announced.push_back(RandomV4Prefix(rng));
    if (rng() % 3 == 0) {
      bgp::MpReach mp;
      mp.next_hop = *IpAddress::Parse("2001:db8::1");
      mp.nlri.push_back(RandomV6Prefix(rng));
      msg.update.attrs.mp_reach = std::move(mp);
    }
  }
  return msg;
}

MrtMessage MustDecode(const Bytes& wire) {
  BufReader r(wire);
  auto raw = DecodeRawRecord(r);
  EXPECT_TRUE(raw.ok()) << raw.status().ToString();
  auto msg = DecodeRecord(*raw);
  EXPECT_TRUE(msg.ok()) << msg.status().ToString();
  return *msg;
}

class EncodeRoundTrip
    : public ::testing::TestWithParam<bgp::AsnEncoding> {};

TEST_P(EncodeRoundTrip, RandomizedUpdatesSurviveExactly) {
  const bgp::AsnEncoding enc = GetParam();
  std::mt19937_64 rng(enc == bgp::AsnEncoding::TwoByte ? 21 : 41);
  for (int i = 0; i < 300; ++i) {
    Bgp4mpMessage msg = RandomUpdate(rng, enc);
    Timestamp ts = 1458000000 + i;
    MrtMessage decoded = MustDecode(EncodeBgp4mpUpdate(ts, msg, enc));
    EXPECT_EQ(decoded.timestamp, ts);
    ASSERT_TRUE(decoded.is_message()) << "iteration " << i;
    const auto& got = std::get<Bgp4mpMessage>(decoded.body);
    EXPECT_EQ(got.peer_asn, msg.peer_asn) << "iteration " << i;
    EXPECT_EQ(got.local_asn, msg.local_asn);
    EXPECT_EQ(got.peer_address.ToString(), msg.peer_address.ToString());
    EXPECT_EQ(got.update.withdrawn, msg.update.withdrawn);
    EXPECT_EQ(got.update.announced, msg.update.announced);
    EXPECT_EQ(got.update.attrs.as_path, msg.update.attrs.as_path)
        << "iteration " << i << ": " << msg.update.attrs.as_path.ToString();
    EXPECT_EQ(bgp::CommunitiesToString(got.update.attrs.communities),
              bgp::CommunitiesToString(msg.update.attrs.communities));
    ASSERT_EQ(got.update.attrs.mp_reach.has_value(),
              msg.update.attrs.mp_reach.has_value());
    if (msg.update.attrs.mp_reach) {
      EXPECT_EQ(got.update.attrs.mp_reach->nlri,
                msg.update.attrs.mp_reach->nlri);
    }
  }
}

TEST_P(EncodeRoundTrip, RandomizedPeerIndexTablesSurviveExactly) {
  const bgp::AsnEncoding enc = GetParam();
  std::mt19937_64 rng(enc == bgp::AsnEncoding::TwoByte ? 22 : 42);
  for (int i = 0; i < 100; ++i) {
    PeerIndexTable pit;
    pit.collector_bgp_id = uint32_t(rng());
    pit.view_name = "view-" + std::to_string(rng() % 1000);
    size_t peers = 1 + rng() % 12;
    for (size_t p = 0; p < peers; ++p) {
      PeerEntry pe;
      pe.bgp_id = uint32_t(rng());
      // Wide ASNs are allowed even under TwoByte: the peer-index type
      // octet is per entry, so the encoder promotes just that entry.
      pe.asn = 1 + rng() % 0xFFFFFFFEu;
      if (rng() % 4 == 0) {
        std::array<uint8_t, 16> b{};
        for (auto& x : b) x = uint8_t(rng());
        pe.address = IpAddress::V6(b);
      } else {
        pe.address = IpAddress::V4(uint32_t(rng()));
      }
      pit.peers.push_back(std::move(pe));
    }
    MrtMessage decoded =
        MustDecode(EncodePeerIndexTable(1458000000, pit, enc));
    ASSERT_TRUE(decoded.is_peer_index());
    const auto& got = std::get<PeerIndexTable>(decoded.body);
    EXPECT_EQ(got.collector_bgp_id, pit.collector_bgp_id);
    EXPECT_EQ(got.view_name, pit.view_name);
    ASSERT_EQ(got.peers.size(), pit.peers.size());
    for (size_t p = 0; p < peers; ++p) {
      EXPECT_EQ(got.peers[p].asn, pit.peers[p].asn) << "peer " << p;
      EXPECT_EQ(got.peers[p].bgp_id, pit.peers[p].bgp_id);
      EXPECT_EQ(got.peers[p].address.ToString(),
                pit.peers[p].address.ToString());
    }
  }
}

TEST_P(EncodeRoundTrip, RandomizedStateChangesSurviveExactly) {
  const bgp::AsnEncoding enc = GetParam();
  std::mt19937_64 rng(enc == bgp::AsnEncoding::TwoByte ? 23 : 43);
  for (int i = 0; i < 100; ++i) {
    Bgp4mpStateChange sc;
    sc.peer_asn = RandomAsn(rng, enc);
    sc.local_asn = RandomAsn(rng, enc);
    sc.peer_address = IpAddress::V4(uint32_t(rng()));
    sc.local_address = IpAddress::V4(uint32_t(rng()));
    sc.old_state = bgp::FsmState(1 + rng() % 6);
    sc.new_state = bgp::FsmState(1 + rng() % 6);
    MrtMessage decoded =
        MustDecode(EncodeBgp4mpStateChange(1458000000, sc, enc));
    ASSERT_TRUE(decoded.is_state_change());
    const auto& got = std::get<Bgp4mpStateChange>(decoded.body);
    EXPECT_EQ(got.peer_asn, sc.peer_asn);
    EXPECT_EQ(got.local_asn, sc.local_asn);
    EXPECT_EQ(int(got.old_state), int(sc.old_state));
    EXPECT_EQ(int(got.new_state), int(sc.new_state));
  }
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, EncodeRoundTrip,
                         ::testing::Values(bgp::AsnEncoding::TwoByte,
                                           bgp::AsnEncoding::FourByte),
                         [](const auto& info) {
                           return info.param == bgp::AsnEncoding::TwoByte
                                      ? "TwoByte"
                                      : "FourByte";
                         });

// RIB records always carry 4-byte attributes (RFC 6396), so wide ASNs
// round-trip regardless of any collector-level encoding choice.
TEST(EncodeRoundTrip, RandomizedRibRecordsSurviveExactly) {
  std::mt19937_64 rng(44);
  for (int i = 0; i < 100; ++i) {
    bool v6 = rng() % 4 == 0;
    RibPrefix rib;
    rib.sequence = uint32_t(rng());
    rib.prefix = v6 ? RandomV6Prefix(rng) : RandomV4Prefix(rng);
    size_t entries = 1 + rng() % 6;
    for (size_t e = 0; e < entries; ++e) {
      RibEntry entry;
      entry.peer_index = uint16_t(rng() % 64);
      entry.originated_time = 1458000000 + Timestamp(rng() % 86400);
      entry.attrs.as_path = RandomPath(rng, bgp::AsnEncoding::FourByte);
      entry.attrs.communities = RandomCommunities(rng);
      if (v6) {
        bgp::MpReach mp;
        mp.next_hop = *IpAddress::Parse("2001:db8::42");
        entry.attrs.mp_reach = std::move(mp);
      } else {
        entry.attrs.next_hop = IpAddress::V4(uint32_t(rng()));
      }
      rib.entries.push_back(std::move(entry));
    }
    MrtMessage decoded = MustDecode(
        EncodeRibPrefix(1458000000, rib, rib.prefix.family()));
    ASSERT_TRUE(decoded.is_rib());
    const auto& got = std::get<RibPrefix>(decoded.body);
    EXPECT_EQ(got.sequence, rib.sequence);
    EXPECT_EQ(got.prefix, rib.prefix);
    ASSERT_EQ(got.entries.size(), rib.entries.size());
    for (size_t e = 0; e < entries; ++e) {
      EXPECT_EQ(got.entries[e].peer_index, rib.entries[e].peer_index);
      EXPECT_EQ(got.entries[e].originated_time,
                rib.entries[e].originated_time);
      EXPECT_EQ(got.entries[e].attrs.as_path, rib.entries[e].attrs.as_path);
    }
  }
}

// The documented lossiness: a >16-bit ASN in a 2-byte BGP4MP header or
// AS_PATH becomes AS_TRANS (RFC 6793), not garbage.
TEST(EncodeRoundTrip, TwoByteEncodingNarrowsWideAsnsToAsTrans) {
  Bgp4mpMessage msg;
  msg.peer_asn = 4200000001;
  msg.local_asn = 64512;
  msg.peer_address = IpAddress::V4(10, 0, 0, 1);
  msg.local_address = IpAddress::V4(192, 0, 2, 1);
  msg.update.attrs.as_path = bgp::AsPath::Sequence({4200000001, 3356, 15169});
  msg.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  msg.update.announced.push_back(*Prefix::Parse("192.0.2.0/24"));

  MrtMessage decoded = MustDecode(
      EncodeBgp4mpUpdate(1458000000, msg, bgp::AsnEncoding::TwoByte));
  const auto& got = std::get<Bgp4mpMessage>(decoded.body);
  EXPECT_EQ(got.peer_asn, kAsTrans);
  EXPECT_EQ(got.local_asn, 64512u);
  EXPECT_EQ(got.update.attrs.as_path.ToString(),
            std::to_string(kAsTrans) + " 3356 15169");
}

// Same options + same seed => the same files with the same bytes; a
// different seed => different bytes. This is the replay contract bgpsim
// documents, checked at the archive level.
TEST(CorpusDeterminism, SameSeedIsByteIdenticalAcrossRuns) {
  const std::string base =
      (fs::temp_directory_path() /
       ("bgps_corpus_det_" + std::to_string(::getpid()))).string();
  sim::CorpusOptions options;
  options.scenario = "mixed";
  options.duration = 1200;
  options.flaps_per_hour = 600;
  options.seed = 1234;

  for (bgp::AsnEncoding enc :
       {bgp::AsnEncoding::FourByte, bgp::AsnEncoding::TwoByte}) {
    options.asn_encoding = enc;
    auto a = sim::GenerateCorpus(options, base + "_a");
    auto b = sim::GenerateCorpus(options, base + "_b");
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_GT(a->files, 0u);
    EXPECT_EQ(a->files, b->files);
    EXPECT_EQ(a->update_messages, b->update_messages);

    auto slurp_all = [](const std::string& root) {
      std::map<std::string, std::string> bytes;
      for (const auto& e : fs::recursive_directory_iterator(root)) {
        if (!e.is_regular_file()) continue;
        std::ifstream in(e.path(), std::ios::binary);
        bytes[fs::relative(e.path(), root).string()] =
            std::string(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
      }
      return bytes;
    };
    auto bytes_a = slurp_all(base + "_a");
    EXPECT_EQ(bytes_a, slurp_all(base + "_b"))
        << "two runs with one seed diverged";

    options.seed = 1235;
    auto c = sim::GenerateCorpus(options, base + "_b");
    ASSERT_TRUE(c.ok());
    options.seed = 1234;
    EXPECT_NE(bytes_a, slurp_all(base + "_b"))
        << "seed change did not change the archive";
  }
  std::error_code ec;
  fs::remove_all(base + "_a", ec);
  fs::remove_all(base + "_b", ec);
}

TEST(CorpusDeterminism, UnknownScenarioIsRejectedWithTheNameList) {
  sim::CorpusOptions options;
  options.scenario = "nope";
  auto r = sim::GenerateCorpus(
      options, (fs::temp_directory_path() / "bgps_corpus_bad").string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
  EXPECT_NE(r.status().message().find("baseline"), std::string::npos);
  EXPECT_NE(r.status().message().find("mixed"), std::string::npos);
}

}  // namespace
}  // namespace bgps::mrt
