#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mrt/encode.hpp"
#include "mrt/file.hpp"

namespace bgps::mrt {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

PeerIndexTable MakePit() {
  PeerIndexTable pit;
  pit.collector_bgp_id = 0xC0000201;
  pit.view_name = "test-view";
  pit.peers.push_back({1, IpAddress::V4(10, 0, 0, 1), 65001});
  pit.peers.push_back({2, *IpAddress::Parse("2001:db8::2"), 4200000002});
  return pit;
}

TEST(MrtCodec, PeerIndexTableRoundTrip) {
  Bytes wire = EncodePeerIndexTable(1458000000, MakePit());
  BufReader r(wire);
  auto raw = DecodeRawRecord(r);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->timestamp, 1458000000);
  EXPECT_EQ(raw->type, uint16_t(MrtType::TableDumpV2));
  auto msg = DecodeRecord(*raw);
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg->is_peer_index());
  const auto& pit = std::get<PeerIndexTable>(msg->body);
  EXPECT_EQ(pit.view_name, "test-view");
  ASSERT_EQ(pit.peers.size(), 2u);
  EXPECT_EQ(pit.peers[0].asn, 65001u);
  EXPECT_EQ(pit.peers[1].asn, 4200000002u);
  EXPECT_TRUE(pit.peers[1].address.is_v6());
}

RibPrefix MakeRib() {
  RibPrefix rib;
  rib.sequence = 7;
  rib.prefix = P("192.168.0.0/16");
  RibEntry e;
  e.peer_index = 0;
  e.originated_time = 1458000000;
  e.attrs.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
  e.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  e.attrs.communities = {bgp::Community(3356, 100)};
  rib.entries.push_back(e);
  RibEntry e2 = e;
  e2.peer_index = 1;
  e2.attrs.as_path = bgp::AsPath::Sequence({4200000002, 15169});
  rib.entries.push_back(e2);
  return rib;
}

TEST(MrtCodec, RibV4RoundTrip) {
  Bytes wire = EncodeRibPrefix(1458000100, MakeRib(), IpFamily::V4);
  BufReader r(wire);
  auto raw = DecodeRawRecord(r);
  ASSERT_TRUE(raw.ok());
  auto msg = DecodeRecord(*raw);
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg->is_rib());
  const auto& rib = std::get<RibPrefix>(msg->body);
  EXPECT_EQ(rib.sequence, 7u);
  EXPECT_EQ(rib.prefix, P("192.168.0.0/16"));
  ASSERT_EQ(rib.entries.size(), 2u);
  EXPECT_EQ(rib.entries[0].attrs.as_path.ToString(), "65001 3356 15169");
  EXPECT_EQ(rib.entries[1].peer_index, 1);
}

TEST(MrtCodec, RibV6RoundTrip) {
  RibPrefix rib;
  rib.sequence = 1;
  rib.prefix = P("2001:db8:7::/48");
  RibEntry e;
  e.peer_index = 0;
  e.originated_time = 1458000000;
  e.attrs.as_path = bgp::AsPath::Sequence({65001});
  bgp::MpReach mp;
  mp.next_hop = *IpAddress::Parse("2001:db8::1");
  e.attrs.mp_reach = mp;
  rib.entries.push_back(e);
  Bytes wire = EncodeRibPrefix(1458000100, rib, IpFamily::V6);
  BufReader r(wire);
  auto msg = DecodeRecord(*DecodeRawRecord(r));
  ASSERT_TRUE(msg.ok());
  const auto& decoded = std::get<RibPrefix>(msg->body);
  EXPECT_EQ(decoded.prefix, P("2001:db8:7::/48"));
  EXPECT_EQ(decoded.prefix.family(), IpFamily::V6);
}

Bgp4mpMessage MakeUpdateMsg() {
  Bgp4mpMessage m;
  m.peer_asn = 65001;
  m.local_asn = 64512;
  m.peer_address = IpAddress::V4(10, 0, 0, 1);
  m.local_address = IpAddress::V4(192, 0, 2, 1);
  m.update.announced = {P("172.16.0.0/12")};
  m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 3356});
  m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
  return m;
}

TEST(MrtCodec, Bgp4mpUpdateRoundTrip) {
  Bytes wire = EncodeBgp4mpUpdate(1458000200, MakeUpdateMsg());
  BufReader r(wire);
  auto msg = DecodeRecord(*DecodeRawRecord(r));
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg->is_message());
  const auto& m = std::get<Bgp4mpMessage>(msg->body);
  EXPECT_EQ(m.peer_asn, 65001u);
  EXPECT_EQ(m.local_asn, 64512u);
  EXPECT_EQ(m.message_type, bgp::MessageType::Update);
  ASSERT_EQ(m.update.announced.size(), 1u);
  EXPECT_EQ(m.update.announced[0], P("172.16.0.0/12"));
  EXPECT_EQ(m.update.attrs.as_path.ToString(), "65001 3356");
}

TEST(MrtCodec, StateChangeRoundTrip) {
  Bgp4mpStateChange sc;
  sc.peer_asn = 65001;
  sc.local_asn = 64512;
  sc.peer_address = IpAddress::V4(10, 0, 0, 1);
  sc.local_address = IpAddress::V4(192, 0, 2, 1);
  sc.old_state = bgp::FsmState::Established;
  sc.new_state = bgp::FsmState::Idle;
  Bytes wire = EncodeBgp4mpStateChange(1458000300, sc);
  BufReader r(wire);
  auto msg = DecodeRecord(*DecodeRawRecord(r));
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg->is_state_change());
  const auto& d = std::get<Bgp4mpStateChange>(msg->body);
  EXPECT_EQ(d.old_state, bgp::FsmState::Established);
  EXPECT_EQ(d.new_state, bgp::FsmState::Idle);
}

TEST(MrtCodec, UnsupportedTypeReported) {
  RawRecord raw;
  raw.timestamp = 1;
  raw.type = 12;  // TABLE_DUMP (v1) — not implemented
  raw.subtype = 1;
  auto msg = DecodeRecord(raw);
  EXPECT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::Unsupported);
}

TEST(MrtCodec, CorruptBodyReported) {
  Bytes wire = EncodeRibPrefix(1458000100, MakeRib(), IpFamily::V4);
  BufReader r(wire);
  auto raw = DecodeRawRecord(r);
  ASSERT_TRUE(raw.ok());
  raw->body = raw->body.subspan(0, raw->body.size() / 2);  // truncate body
  auto msg = DecodeRecord(*raw);
  EXPECT_FALSE(msg.ok());
}

TEST(MrtCodec, MultipleRecordsInOneBuffer) {
  BufWriter w;
  w.bytes(EncodePeerIndexTable(100, MakePit()));
  w.bytes(EncodeRibPrefix(101, MakeRib(), IpFamily::V4));
  w.bytes(EncodeBgp4mpUpdate(102, MakeUpdateMsg()));
  Bytes all = w.take();
  BufReader r(all);
  int count = 0;
  Timestamp last = 0;
  while (true) {
    auto raw = DecodeRawRecord(r);
    if (!raw.ok()) {
      EXPECT_EQ(raw.status().code(), StatusCode::EndOfStream);
      break;
    }
    EXPECT_GE(raw->timestamp, last);
    last = raw->timestamp;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

class MrtFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("mrt_test_" + std::to_string(::getpid()) + ".mrt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(MrtFileTest, WriteThenScan) {
  MrtFileWriter w;
  ASSERT_TRUE(w.Open(path_.string()).ok());
  ASSERT_TRUE(w.Write(EncodePeerIndexTable(100, MakePit())).ok());
  ASSERT_TRUE(w.Write(EncodeRibPrefix(101, MakeRib(), IpFamily::V4)).ok());
  ASSERT_TRUE(w.Write(EncodeBgp4mpUpdate(102, MakeUpdateMsg())).ok());
  ASSERT_TRUE(w.Close().ok());

  auto scan = ScanFile(path_.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->messages.size(), 3u);
  EXPECT_EQ(scan->corrupt, 0u);
  EXPECT_EQ(scan->unsupported, 0u);
}

TEST_F(MrtFileTest, EmptyFileIsCleanEnd) {
  MrtFileWriter w;
  ASSERT_TRUE(w.Open(path_.string()).ok());
  ASSERT_TRUE(w.Close().ok());
  MrtFileReader r;
  ASSERT_TRUE(r.Open(path_.string()).ok());
  auto rec = r.Next();
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::EndOfStream);
}

TEST_F(MrtFileTest, TruncatedFileReportsCorruptOnce) {
  MrtFileWriter w;
  ASSERT_TRUE(w.Open(path_.string()).ok());
  Bytes rec = EncodeBgp4mpUpdate(102, MakeUpdateMsg());
  rec.resize(rec.size() - 5);  // cut mid-body
  ASSERT_TRUE(w.WriteRaw(rec).ok());
  ASSERT_TRUE(w.Close().ok());

  MrtFileReader r;
  ASSERT_TRUE(r.Open(path_.string()).ok());
  auto first = r.Next();
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::Corrupt);
  auto second = r.Next();
  EXPECT_EQ(second.status().code(), StatusCode::EndOfStream);
}

TEST_F(MrtFileTest, GarbageHeaderIsCorrupt) {
  MrtFileWriter w;
  ASSERT_TRUE(w.Open(path_.string()).ok());
  Bytes garbage(300, 0xFF);  // length field will be implausible
  ASSERT_TRUE(w.WriteRaw(garbage).ok());
  ASSERT_TRUE(w.Close().ok());
  MrtFileReader r;
  ASSERT_TRUE(r.Open(path_.string()).ok());
  EXPECT_EQ(r.Next().status().code(), StatusCode::Corrupt);
}

TEST_F(MrtFileTest, MissingFileIsIoError) {
  MrtFileReader r;
  EXPECT_EQ(r.Open("/nonexistent/dir/file.mrt").code(), StatusCode::IoError);
}

TEST_F(MrtFileTest, ScanCountsCorruptTail) {
  MrtFileWriter w;
  ASSERT_TRUE(w.Open(path_.string()).ok());
  ASSERT_TRUE(w.Write(EncodeBgp4mpUpdate(100, MakeUpdateMsg())).ok());
  Bytes cut = EncodeBgp4mpUpdate(101, MakeUpdateMsg());
  cut.resize(cut.size() - 3);
  ASSERT_TRUE(w.WriteRaw(cut).ok());
  ASSERT_TRUE(w.Close().ok());
  auto scan = ScanFile(path_.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->messages.size(), 1u);
  EXPECT_EQ(scan->corrupt, 1u);
}

}  // namespace
}  // namespace bgps::mrt
