#include <gtest/gtest.h>

#include <random>
#include <set>

#include "util/patricia.hpp"

namespace bgps {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }
IpAddress A(const std::string& s) { return *IpAddress::Parse(s); }

TEST(Patricia, InsertFind) {
  PatriciaTrie<int> t(IpFamily::V4);
  EXPECT_TRUE(t.insert(P("10.0.0.0/8"), 1));
  EXPECT_TRUE(t.insert(P("10.1.0.0/16"), 2));
  EXPECT_FALSE(t.insert(P("10.0.0.0/8"), 3));  // overwrite, not new
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(*t.find(P("10.0.0.0/8")), 3);
  EXPECT_EQ(*t.find(P("10.1.0.0/16")), 2);
  EXPECT_EQ(t.find(P("10.2.0.0/16")), nullptr);
}

TEST(Patricia, Erase) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("10.1.0.0/16"), 2);
  EXPECT_TRUE(t.erase(P("10.0.0.0/8")));
  EXPECT_FALSE(t.erase(P("10.0.0.0/8")));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(P("10.0.0.0/8")), nullptr);
  EXPECT_NE(t.find(P("10.1.0.0/16")), nullptr);  // child survives
}

TEST(Patricia, LongestMatch) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.1.0.0/16"), 16);
  t.insert(P("10.1.2.0/24"), 24);
  auto m = t.longest_match(A("10.1.2.3"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 24);
  m = t.longest_match(A("10.1.3.1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 16);
  m = t.longest_match(A("10.200.0.1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 8);
  EXPECT_FALSE(t.longest_match(A("11.0.0.1")).has_value());
}

TEST(Patricia, LongestMatchSkipsInternalNodes) {
  PatriciaTrie<int> t(IpFamily::V4);
  // These two force a glue node at some shorter prefix with no value.
  t.insert(P("10.1.0.0/16"), 1);
  t.insert(P("10.2.0.0/16"), 2);
  EXPECT_FALSE(t.longest_match(A("10.3.0.1")).has_value());
  EXPECT_EQ(t.longest_match(A("10.2.5.5"))->second, 2);
}

TEST(Patricia, VisitMatchesOrder) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.1.0.0/16"), 16);
  t.insert(P("10.1.2.0/24"), 24);
  std::vector<int> seen;
  t.visit_matches(A("10.1.2.3"), [&](const Prefix&, int v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.front(), 8);   // least specific first
  EXPECT_EQ(seen.back(), 24);   // most specific last
}

TEST(Patricia, Overlaps) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.1.0.0/16"), 1);
  EXPECT_TRUE(t.overlaps(P("10.0.0.0/8")));      // query contains stored
  EXPECT_TRUE(t.overlaps(P("10.1.2.0/24")));     // stored contains query
  EXPECT_TRUE(t.overlaps(P("10.1.0.0/16")));     // equal
  EXPECT_FALSE(t.overlaps(P("10.2.0.0/16")));
  EXPECT_FALSE(t.overlaps(P("11.0.0.0/8")));
}

TEST(Patricia, VisitOverlapsCollectsBothDirections) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("10.1.0.0/16"), 2);
  t.insert(P("10.1.2.0/24"), 3);
  t.insert(P("11.0.0.0/8"), 4);
  std::set<int> seen;
  t.visit_overlaps(P("10.1.0.0/16"), [&](const Prefix&, int v) { seen.insert(v); });
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3}));
}

TEST(Patricia, DefaultRouteMatchesAll) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("0.0.0.0/0"), 0);
  EXPECT_EQ(t.longest_match(A("1.2.3.4"))->second, 0);
  EXPECT_TRUE(t.overlaps(P("250.0.0.0/8")));
}

TEST(Patricia, V6Basics) {
  PatriciaTrie<int> t(IpFamily::V6);
  t.insert(P("2001:db8::/32"), 1);
  t.insert(P("2001:db8:1::/48"), 2);
  EXPECT_EQ(t.longest_match(A("2001:db8:1::5"))->second, 2);
  EXPECT_EQ(t.longest_match(A("2001:db8:2::5"))->second, 1);
  EXPECT_FALSE(t.longest_match(A("2002::1")).has_value());
}

TEST(Patricia, WrongFamilyQueriesAreSafe) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  EXPECT_FALSE(t.longest_match(A("2001:db8::1")).has_value());
  EXPECT_FALSE(t.overlaps(P("2001:db8::/32")));
}

TEST(PrefixTable, DualFamily) {
  PrefixTable<int> t;
  t.insert(P("10.0.0.0/8"), 4);
  t.insert(P("2001:db8::/32"), 6);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.longest_match(A("10.1.1.1"))->second, 4);
  EXPECT_EQ(t.longest_match(A("2001:db8::1"))->second, 6);
  EXPECT_TRUE(t.overlaps(P("10.1.0.0/16")));
  EXPECT_TRUE(t.overlaps(P("2001:db8:9::/48")));
}

// Property test: trie agrees with a brute-force reference on random data.
class PatriciaRandomized : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PatriciaRandomized, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  PatriciaTrie<uint32_t> t(IpFamily::V4);
  std::map<Prefix, uint32_t> ref;
  for (int i = 0; i < 300; ++i) {
    int len = int(rng() % 25) + 8;
    Prefix p(IpAddress::V4(rng()), len);
    uint32_t v = rng();
    t.insert(p, v);
    ref[p] = v;
  }
  ASSERT_EQ(t.size(), ref.size());
  // Exact lookups.
  for (const auto& [p, v] : ref) {
    auto* found = t.find(p);
    ASSERT_NE(found, nullptr) << p.ToString();
    EXPECT_EQ(*found, v);
  }
  // Longest-prefix matches on random addresses.
  for (int i = 0; i < 200; ++i) {
    IpAddress addr = IpAddress::V4(rng());
    std::optional<Prefix> best;
    for (const auto& [p, v] : ref) {
      if (p.contains(addr) && (!best || p.length() > best->length())) best = p;
    }
    auto got = t.longest_match(addr);
    if (best) {
      ASSERT_TRUE(got.has_value()) << addr.ToString();
      EXPECT_EQ(got->first, *best) << addr.ToString();
    } else {
      EXPECT_FALSE(got.has_value()) << addr.ToString();
    }
  }
  // Overlap queries on random prefixes.
  for (int i = 0; i < 100; ++i) {
    Prefix q(IpAddress::V4(rng()), int(rng() % 33));
    bool expect = false;
    for (const auto& [p, v] : ref) {
      if (p.overlaps(q)) {
        expect = true;
        break;
      }
    }
    EXPECT_EQ(t.overlaps(q), expect) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatriciaRandomized,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace bgps
