#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "util/patricia.hpp"

namespace bgps {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }
IpAddress A(const std::string& s) { return *IpAddress::Parse(s); }

TEST(Patricia, InsertFind) {
  PatriciaTrie<int> t(IpFamily::V4);
  EXPECT_TRUE(t.insert(P("10.0.0.0/8"), 1));
  EXPECT_TRUE(t.insert(P("10.1.0.0/16"), 2));
  EXPECT_FALSE(t.insert(P("10.0.0.0/8"), 3));  // overwrite, not new
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(*t.find(P("10.0.0.0/8")), 3);
  EXPECT_EQ(*t.find(P("10.1.0.0/16")), 2);
  EXPECT_EQ(t.find(P("10.2.0.0/16")), nullptr);
}

TEST(Patricia, Erase) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("10.1.0.0/16"), 2);
  EXPECT_TRUE(t.erase(P("10.0.0.0/8")));
  EXPECT_FALSE(t.erase(P("10.0.0.0/8")));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(P("10.0.0.0/8")), nullptr);
  EXPECT_NE(t.find(P("10.1.0.0/16")), nullptr);  // child survives
}

TEST(Patricia, LongestMatch) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.1.0.0/16"), 16);
  t.insert(P("10.1.2.0/24"), 24);
  auto m = t.longest_match(A("10.1.2.3"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 24);
  m = t.longest_match(A("10.1.3.1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 16);
  m = t.longest_match(A("10.200.0.1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 8);
  EXPECT_FALSE(t.longest_match(A("11.0.0.1")).has_value());
}

TEST(Patricia, LongestMatchSkipsInternalNodes) {
  PatriciaTrie<int> t(IpFamily::V4);
  // These two force a glue node at some shorter prefix with no value.
  t.insert(P("10.1.0.0/16"), 1);
  t.insert(P("10.2.0.0/16"), 2);
  EXPECT_FALSE(t.longest_match(A("10.3.0.1")).has_value());
  EXPECT_EQ(t.longest_match(A("10.2.5.5"))->second, 2);
}

TEST(Patricia, VisitMatchesOrder) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.1.0.0/16"), 16);
  t.insert(P("10.1.2.0/24"), 24);
  std::vector<int> seen;
  t.visit_matches(A("10.1.2.3"), [&](const Prefix&, int v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.front(), 8);   // least specific first
  EXPECT_EQ(seen.back(), 24);   // most specific last
}

TEST(Patricia, Overlaps) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.1.0.0/16"), 1);
  EXPECT_TRUE(t.overlaps(P("10.0.0.0/8")));      // query contains stored
  EXPECT_TRUE(t.overlaps(P("10.1.2.0/24")));     // stored contains query
  EXPECT_TRUE(t.overlaps(P("10.1.0.0/16")));     // equal
  EXPECT_FALSE(t.overlaps(P("10.2.0.0/16")));
  EXPECT_FALSE(t.overlaps(P("11.0.0.0/8")));
}

TEST(Patricia, VisitOverlapsCollectsBothDirections) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("10.1.0.0/16"), 2);
  t.insert(P("10.1.2.0/24"), 3);
  t.insert(P("11.0.0.0/8"), 4);
  std::set<int> seen;
  t.visit_overlaps(P("10.1.0.0/16"), [&](const Prefix&, int v) { seen.insert(v); });
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3}));
}

TEST(Patricia, DefaultRouteMatchesAll) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("0.0.0.0/0"), 0);
  EXPECT_EQ(t.longest_match(A("1.2.3.4"))->second, 0);
  EXPECT_TRUE(t.overlaps(P("250.0.0.0/8")));
}

TEST(Patricia, V6Basics) {
  PatriciaTrie<int> t(IpFamily::V6);
  t.insert(P("2001:db8::/32"), 1);
  t.insert(P("2001:db8:1::/48"), 2);
  EXPECT_EQ(t.longest_match(A("2001:db8:1::5"))->second, 2);
  EXPECT_EQ(t.longest_match(A("2001:db8:2::5"))->second, 1);
  EXPECT_FALSE(t.longest_match(A("2002::1")).has_value());
}

TEST(Patricia, WrongFamilyQueriesAreSafe) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  EXPECT_FALSE(t.longest_match(A("2001:db8::1")).has_value());
  EXPECT_FALSE(t.overlaps(P("2001:db8::/32")));
}

TEST(PrefixTable, DualFamily) {
  PrefixTable<int> t;
  t.insert(P("10.0.0.0/8"), 4);
  t.insert(P("2001:db8::/32"), 6);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.longest_match(A("10.1.1.1"))->second, 4);
  EXPECT_EQ(t.longest_match(A("2001:db8::1"))->second, 6);
  EXPECT_TRUE(t.overlaps(P("10.1.0.0/16")));
  EXPECT_TRUE(t.overlaps(P("2001:db8:9::/48")));
}

// Property test: trie agrees with a brute-force reference on random data.
class PatriciaRandomized : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PatriciaRandomized, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  PatriciaTrie<uint32_t> t(IpFamily::V4);
  std::map<Prefix, uint32_t> ref;
  for (int i = 0; i < 300; ++i) {
    int len = int(rng() % 25) + 8;
    Prefix p(IpAddress::V4(rng()), len);
    uint32_t v = rng();
    t.insert(p, v);
    ref[p] = v;
  }
  ASSERT_EQ(t.size(), ref.size());
  // Exact lookups.
  for (const auto& [p, v] : ref) {
    auto* found = t.find(p);
    ASSERT_NE(found, nullptr) << p.ToString();
    EXPECT_EQ(*found, v);
  }
  // Longest-prefix matches on random addresses.
  for (int i = 0; i < 200; ++i) {
    IpAddress addr = IpAddress::V4(rng());
    std::optional<Prefix> best;
    for (const auto& [p, v] : ref) {
      if (p.contains(addr) && (!best || p.length() > best->length())) best = p;
    }
    auto got = t.longest_match(addr);
    if (best) {
      ASSERT_TRUE(got.has_value()) << addr.ToString();
      EXPECT_EQ(got->first, *best) << addr.ToString();
    } else {
      EXPECT_FALSE(got.has_value()) << addr.ToString();
    }
  }
  // Overlap queries on random prefixes.
  for (int i = 0; i < 100; ++i) {
    Prefix q(IpAddress::V4(rng()), int(rng() % 33));
    bool expect = false;
    for (const auto& [p, v] : ref) {
      if (p.overlaps(q)) {
        expect = true;
        break;
      }
    }
    EXPECT_EQ(t.overlaps(q), expect) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatriciaRandomized,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Erase agrees with brute force and prunes: after removing everything,
// no node (value-carrying or glue) may remain.
TEST_P(PatriciaRandomized, EraseMatchesBruteForceAndPrunes) {
  std::mt19937 rng(GetParam() * 77 + 1);
  PatriciaTrie<uint32_t> t(IpFamily::V4);
  std::map<Prefix, uint32_t> ref;
  for (int i = 0; i < 300; ++i) {
    int len = int(rng() % 25) + 8;
    Prefix p(IpAddress::V4(rng()), len);
    uint32_t v = rng();
    t.insert(p, v);
    ref[p] = v;
  }
  // Erase a random half, checking lookups against the reference as we go.
  std::vector<Prefix> keys;
  for (const auto& [p, _] : ref) keys.push_back(p);
  for (size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(t.erase(keys[i]));
    EXPECT_FALSE(t.erase(keys[i]));  // idempotent
    ref.erase(keys[i]);
  }
  ASSERT_EQ(t.size(), ref.size());
  for (const auto& [p, v] : ref) {
    auto* found = t.find(p);
    ASSERT_NE(found, nullptr) << p.ToString();
    EXPECT_EQ(*found, v);
  }
  for (int i = 0; i < 100; ++i) {
    IpAddress addr = IpAddress::V4(rng());
    std::optional<Prefix> best;
    for (const auto& [p, v] : ref) {
      if (p.contains(addr) && (!best || p.length() > best->length())) best = p;
    }
    auto got = t.longest_match(addr);
    EXPECT_EQ(got.has_value(), best.has_value()) << addr.ToString();
    if (got && best) EXPECT_EQ(got->first, *best);
  }
  // Remove the rest: the trie must shed every node, glue included.
  for (const auto& [p, _] : ref) EXPECT_TRUE(t.erase(p));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(Patricia, ErasePrunesGlueNodes) {
  PatriciaTrie<int> t(IpFamily::V4);
  // Two diverging /16s force a glue node at their common prefix.
  t.insert(P("10.1.0.0/16"), 1);
  t.insert(P("10.2.0.0/16"), 2);
  EXPECT_EQ(t.node_count(), 3u);  // glue + two leaves
  EXPECT_TRUE(t.erase(P("10.1.0.0/16")));
  // The glue node lost one child: it must be spliced out, not leaked.
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_NE(t.find(P("10.2.0.0/16")), nullptr);
  EXPECT_TRUE(t.erase(P("10.2.0.0/16")));
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(Patricia, EraseKeepsValuedAncestorsAndBranchNodes) {
  PatriciaTrie<int> t(IpFamily::V4);
  // The two /16s diverge at bit 8, directly under the /8: the /8 node
  // holds both children itself (no glue in between).
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.0.0.0/16"), 16);
  t.insert(P("10.128.0.0/16"), 17);
  ASSERT_EQ(t.node_count(), 3u);
  // The /8 still has two children after losing its value: stays as a
  // branch node.
  EXPECT_TRUE(t.erase(P("10.0.0.0/8")));
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*t.find(P("10.0.0.0/16")), 16);
  EXPECT_EQ(t.longest_match(A("10.128.5.5"))->second, 17);
  // A valueless single-child node created by erasing a leaf's sibling
  // is spliced: erase one /16, only the other survives as the root.
  EXPECT_TRUE(t.erase(P("10.0.0.0/16")));
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(*t.find(P("10.128.0.0/16")), 17);
}

TEST(Patricia, KeysReservesAndMatchesVisitAll) {
  PatriciaTrie<int> t(IpFamily::V4);
  std::set<Prefix> expect;
  std::mt19937 rng(11);
  for (int i = 0; i < 500; ++i) {
    Prefix p(IpAddress::V4(rng()), int(rng() % 25) + 8);
    t.insert(p, i);
    expect.insert(p);
  }
  auto keys = t.keys();
  EXPECT_EQ(keys.size(), expect.size());
  EXPECT_EQ(std::set<Prefix>(keys.begin(), keys.end()), expect);
}

TEST(Patricia, DeepChainTraversalsAreIterative) {
  // A maximal one-branch chain: /8../32 nested prefixes. Visitors must
  // walk it with their explicit stack (and erase must unwind it fully).
  PatriciaTrie<int> t(IpFamily::V4);
  for (int len = 8; len <= 32; ++len) {
    t.insert(Prefix(A("10.0.0.0"), len), len);
  }
  size_t seen = 0;
  t.visit_all([&](const Prefix&, int) { ++seen; });
  EXPECT_EQ(seen, 25u);
  EXPECT_EQ(t.keys().size(), 25u);
  size_t overlap_hits = 0;
  t.visit_overlaps(P("10.0.0.0/8"),
                   [&](const Prefix&, int) { ++overlap_hits; });
  EXPECT_EQ(overlap_hits, 25u);
  for (int len = 8; len <= 32; ++len)
    EXPECT_TRUE(t.erase(Prefix(A("10.0.0.0"), len)));
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(Patricia, SnapshotIsIsolatedFromLaterWrites) {
  PatriciaTrie<int> t(IpFamily::V4);
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("10.1.0.0/16"), 2);
  auto snap = t.snapshot();
  // Mutate the live trie: overwrite, add, erase.
  t.insert(P("10.0.0.0/8"), 99);
  t.insert(P("11.0.0.0/8"), 3);
  t.erase(P("10.1.0.0/16"));
  // The snapshot still shows the captured epoch.
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(*snap.find(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*snap.find(P("10.1.0.0/16")), 2);
  EXPECT_EQ(snap.find(P("11.0.0.0/8")), nullptr);
  EXPECT_EQ(snap.longest_match(A("10.1.2.3"))->second, 2);
  EXPECT_TRUE(snap.overlaps(P("10.1.0.0/24")));
  EXPECT_FALSE(snap.overlaps(P("11.0.0.0/8")));
  EXPECT_EQ(snap.keys().size(), 2u);
  // And the live trie shows the new one.
  EXPECT_EQ(*t.find(P("10.0.0.0/8")), 99);
  EXPECT_NE(t.find(P("11.0.0.0/8")), nullptr);
  EXPECT_EQ(t.find(P("10.1.0.0/16")), nullptr);
}

TEST(PrefixTable, SnapshotCoversBothFamilies) {
  PrefixTable<int> t;
  t.insert(P("10.0.0.0/8"), 4);
  t.insert(P("2001:db8::/32"), 6);
  auto snap = t.snapshot();
  t.erase(P("10.0.0.0/8"));
  t.erase(P("2001:db8::/32"));
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.longest_match(A("10.1.1.1"))->second, 4);
  EXPECT_EQ(snap.longest_match(A("2001:db8::1"))->second, 6);
  EXPECT_TRUE(snap.overlaps(P("10.1.0.0/16")));
  EXPECT_TRUE(t.empty());
}

// Single writer, concurrent snapshot readers: every snapshot must be a
// consistent epoch — its key count matches its size header, every key it
// reports resolves, and (the trie only ever grows here) every key seen
// in an earlier snapshot is still present in a later one.
TEST(Patricia, ConcurrentSnapshotReadsWhileInserting) {
  PatriciaTrie<uint32_t> t(IpFamily::V4);
  constexpr int kInserts = 20000;
  std::atomic<bool> done{false};
  std::atomic<int> inserted{0};

  std::thread writer([&] {
    std::mt19937 rng(123);
    for (int i = 0; i < kInserts; ++i) {
      t.insert(Prefix(IpAddress::V4(rng()), int(rng() % 25) + 8), uint32_t(i));
      inserted.store(i + 1, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<bool> torn{false};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(1000 + r);
      size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = t.snapshot();
        auto keys = snap.keys();
        if (keys.size() != snap.size()) torn = true;      // torn epoch
        if (snap.size() + 64 < last_size) torn = true;    // size went back
        last_size = std::max(last_size, snap.size());
        for (size_t i = 0; i < std::min<size_t>(keys.size(), 32); ++i) {
          if (snap.find(keys[i]) == nullptr) torn = true;  // key vanished
        }
        // Live-trie reads pin the root per query: must never crash or
        // return garbage mid-write either.
        (void)t.longest_match(IpAddress::V4(rng()));
        (void)t.overlaps(Prefix(IpAddress::V4(rng()), 16));
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(int(t.size()) <= kInserts, true);
  auto final_snap = t.snapshot();
  EXPECT_EQ(final_snap.keys().size(), final_snap.size());
}

}  // namespace
}  // namespace bgps
