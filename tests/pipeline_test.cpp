// End-to-end pipeline and failure-injection tests:
//   sim -> archive -> broker -> stream -> corsaro RT -> mq -> consumers,
// plus corrupted archives flowing through every layer.
#include <gtest/gtest.h>

#include <filesystem>

#include "corsaro/corsaro.hpp"
#include "corsaro/rt.hpp"
#include "mq/consumers.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps {
namespace {

std::string TmpDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "_" + std::to_string(::getpid())))
      .string();
}

broker::Broker::Options Historical() {
  broker::Broker::Options opt;
  opt.clock = [] { return Timestamp(4102444800); };
  return opt;
}

TEST(Pipeline, RtToKafkaToConsumerRoundTrip) {
  const auto& arch = testutil::GetSmallArchive();
  broker::Broker broker(arch.root, Historical());

  mq::Cluster cluster;
  std::vector<std::string> names;
  for (const auto& c : arch.driver->collectors())
    names.push_back(c.config().name);

  std::vector<std::unique_ptr<core::BrokerDataInterface>> dis;
  std::vector<std::unique_ptr<core::BgpStream>> streams;
  std::vector<std::unique_ptr<corsaro::BgpCorsaro>> engines;
  for (const auto& name : names) {
    auto di = std::make_unique<core::BrokerDataInterface>(&broker);
    auto stream = std::make_unique<core::BgpStream>();
    ASSERT_TRUE(stream->AddFilter("collector", name).ok());
    stream->SetInterval(arch.start, arch.end);
    stream->SetDataInterface(di.get());
    ASSERT_TRUE(stream->Start().ok());
    auto engine = std::make_unique<corsaro::BgpCorsaro>(stream.get(), 300);
    auto rt = std::make_unique<corsaro::RoutingTables>();
    mq::PublishRtToCluster(*rt, cluster, name);
    engine->AddPlugin(std::move(rt));
    dis.push_back(std::move(di));
    streams.push_back(std::move(stream));
    engines.push_back(std::move(engine));
  }

  mq::CompletenessSyncServer sync(&cluster, "ready",
                                  {names.begin(), names.end()});
  const sim::Topology& topo = arch.driver->topology();
  mq::GlobalViewConsumer consumer(
      &cluster, names, "ready",
      [&topo](bgp::Asn asn) {
        return topo.has_node(asn) ? topo.node(asn).country : "??";
      });

  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& e : engines) progress |= e->Step(1000);
    sync.Poll();
    consumer.Poll();
  }
  sync.Poll();
  consumer.Poll();

  // Bins were marked ready only when BOTH collectors reported.
  EXPECT_GT(consumer.country_rows().size(), 0u);
  EXPECT_GT(consumer.as_rows().size(), 0u);

  // The consumer's reconstructed VP table matches the RT ground truth for
  // a full-feed VP of the RIS collector.
  const auto& ris_cfg = arch.driver->collectors().back().config();
  for (const auto& vp : ris_cfg.vps) {
    if (!vp.full_feed) continue;
    const auto* table = consumer.vp_table({ris_cfg.name, vp.asn});
    ASSERT_NE(table, nullptr);
    auto truth = arch.driver->world().ExportedTable(vp.asn, true);
    EXPECT_NEAR(double(table->size()), double(truth.size()),
                double(truth.size()) * 0.02 + 2);
    break;
  }

  // No outage was scripted: country-level visibility stays near the
  // baseline, so the change-point detector must not fire on flap noise.
  // (Per-AS series of one-prefix stubs legitimately hit zero on a flap.)
  for (const auto& alarm : consumer.alarms()) {
    EXPECT_EQ(alarm.key.rfind("AS", 0), 0u)
        << "country alarm on flap noise: " << alarm.key;
  }
}

TEST(Pipeline, CorruptedArchiveSurfacesAsRecordsNotCrashes) {
  std::string root = TmpDir("corrupt_arch");
  std::filesystem::remove_all(root);
  sim::StandardSimOptions options;
  options.topo.num_tier1 = 3;
  options.topo.num_transit = 8;
  options.topo.num_stub = 24;
  options.topo.seed = 123;
  options.rv_collectors = 1;
  options.ris_collectors = 0;
  options.vps_per_collector = 4;
  options.publish_delay = 0;
  options.corrupt_probability = 0.5;  // half the updates dumps truncated
  options.seed = 9;
  auto driver = sim::MakeStandardSim(options, root);
  Timestamp start = TimestampFromYmdHms(2016, 6, 1, 0, 0, 0);
  Timestamp end = start + 2 * 3600;
  driver->AddFlapNoise(start, end, 400.0, 60);
  ASSERT_TRUE(driver->Run(start, end).ok());

  broker::Broker broker(root, Historical());
  core::BrokerDataInterface di(&broker);
  core::BgpStream stream;
  stream.SetInterval(start, end);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());

  size_t valid = 0, corrupt = 0;
  while (auto rec = stream.NextRecord()) {
    if (rec->status == core::RecordStatus::Valid) {
      ++valid;
    } else {
      ++corrupt;
      EXPECT_TRUE(stream.Elems(*rec).empty());
    }
  }
  EXPECT_GT(valid, 0u);
  EXPECT_GT(corrupt, 0u);  // corruption made it through as flagged records

  // The RT plugin runs over the same corrupt stream without crashing and
  // keeps VPs in a defined state.
  core::BrokerDataInterface di2(&broker);
  core::BgpStream stream2;
  stream2.SetInterval(start, end);
  stream2.SetDataInterface(&di2);
  ASSERT_TRUE(stream2.Start().ok());
  corsaro::BgpCorsaro engine(&stream2, 300);
  auto rt = std::make_unique<corsaro::RoutingTables>();
  corsaro::RoutingTables* rtp = rt.get();
  engine.AddPlugin(std::move(rt));
  engine.Run();
  EXPECT_FALSE(rtp->vps().empty());
  std::filesystem::remove_all(root);
}

TEST(Pipeline, LiveStreamDeliversEachDumpExactlyOnce) {
  const auto& arch = testutil::GetSmallArchive();
  Timestamp now = arch.start + 200;
  broker::Broker::Options opt;
  opt.clock = [&now] { return now; };
  broker::Broker broker(arch.root, opt);
  core::BrokerDataInterface di(&broker);

  core::BgpStream::Options sopt;
  sopt.poll_wait = [&now] { now += 120; };
  sopt.max_consecutive_polls = 200;
  core::BgpStream stream(sopt);
  (void)stream.AddFilter("type", "updates");
  stream.SetLive(arch.start);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());

  // Track (collector, dump_time) pairs: each updates dump contributes its
  // records exactly once even though the live frontier revisits windows.
  std::map<std::pair<std::string, Timestamp>, size_t> seen;
  while (auto rec = stream.NextRecord()) {
    ++seen[{rec->collector, rec->dump_time}];
    if (now > arch.end + 3600) break;
  }
  // Compare against a historical run.
  broker::Broker hbroker(arch.root, Historical());
  core::BrokerDataInterface hdi(&hbroker);
  core::BgpStream href;
  (void)href.AddFilter("type", "updates");
  href.SetInterval(arch.start, arch.end);
  href.SetDataInterface(&hdi);
  ASSERT_TRUE(href.Start().ok());
  std::map<std::pair<std::string, Timestamp>, size_t> expected;
  while (auto rec = href.NextRecord()) {
    ++expected[{rec->collector, rec->dump_time}];
  }
  for (const auto& [key, count] : expected) {
    EXPECT_EQ(seen[key], count)
        << key.first << " @ " << FormatTimestamp(key.second);
  }
}

}  // namespace
}  // namespace bgps
