// Tests of the asynchronous prefetching decode stage (paper §3.1): the
// PrefetchDecoder pool itself, and BgpStream equivalence between the
// synchronous and prefetched paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>

#include "core/prefetch.hpp"
#include "core/stream.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::core {
namespace {

using broker::DumpFileMeta;
using broker::DumpType;

// A subset of intentionally unopenable files: each decodes to exactly one
// CorruptedDump record, which makes decoder output fully deterministic
// without touching disk.
std::vector<DumpFileMeta> BogusSubset(const std::string& tag, size_t n) {
  std::vector<DumpFileMeta> files;
  for (size_t i = 0; i < n; ++i) {
    DumpFileMeta f;
    f.project = "test";
    f.collector = tag + "-" + std::to_string(i);
    f.type = DumpType::Updates;
    f.start = Timestamp(1000 * (i + 1));
    f.duration = 300;
    f.path = "/nonexistent/" + tag + "/" + std::to_string(i) + ".mrt";
    files.push_back(f);
  }
  return files;
}

// DumpReader::Skip — the idle-reclaim resume path — must count exactly
// Next()'s record cadence and keep the PEER_INDEX_TABLE alive, so a
// post-skip RIB record still decomposes into per-VP elems.
TEST(DumpReaderSkipTest, SkipMatchesNextCadenceAcrossARibDump) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_skip_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "rib.mrt").string();
  constexpr int kRibRecords = 12;
  {
    mrt::MrtFileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    mrt::PeerIndexTable pit;
    pit.collector_bgp_id = 0x0a000001;
    mrt::PeerEntry pe;
    pe.bgp_id = 0x0a000002;
    pe.address = IpAddress::V4(10, 0, 0, 2);
    pe.asn = 65001;
    pit.peers.push_back(pe);
    ASSERT_TRUE(w.Write(mrt::EncodePeerIndexTable(1458000000, pit)).ok());
    for (int i = 0; i < kRibRecords; ++i) {
      mrt::RibPrefix rib;
      rib.sequence = uint32_t(i);
      rib.prefix = Prefix(IpAddress::V4(uint32_t(20 + i) << 24), 16);
      mrt::RibEntry e;
      e.peer_index = 0;
      e.originated_time = 1458000000;
      e.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      e.attrs.next_hop = IpAddress::V4(10, 0, 0, 2);
      rib.entries.push_back(std::move(e));
      ASSERT_TRUE(
          w.Write(mrt::EncodeRibPrefix(1458000000, rib, IpFamily::V4)).ok());
    }
    ASSERT_TRUE(w.Close().ok());
  }
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "rib";
  meta.type = DumpType::Rib;
  meta.start = 1458000000;
  meta.duration = 300;
  meta.path = path;

  // Baseline: the full Next() sequence, with per-record elem counts.
  struct Fp {
    int position;
    int status;
    size_t elems;
    std::string first_prefix;
  };
  std::vector<Fp> all;
  {
    DumpReader reader(meta);
    while (auto rec = reader.Next()) {
      auto elems = ExtractElems(*rec);
      all.push_back({int(rec->position), int(rec->status), elems.size(),
                     elems.empty() ? "" : elems[0].prefix.ToString()});
    }
  }
  constexpr size_t kTotal = 1 + kRibRecords;  // peer index + RIBs
  ASSERT_EQ(all.size(), kTotal);

  for (size_t skip : {size_t(0), size_t(1), size_t(5), kTotal, kTotal + 3}) {
    DumpReader reader(meta);
    EXPECT_EQ(reader.Skip(skip), std::min(skip, kTotal)) << "skip " << skip;
    std::vector<Fp> rest;
    while (auto rec = reader.Next()) {
      // The peer index must have been ingested during the skip: RIB
      // records after it still extract their per-VP elems.
      auto elems = ExtractElems(*rec);
      rest.push_back({int(rec->position), int(rec->status), elems.size(),
                      elems.empty() ? "" : elems[0].prefix.ToString()});
    }
    ASSERT_EQ(rest.size(), kTotal - std::min(skip, kTotal)) << "skip " << skip;
    for (size_t i = 0; i < rest.size(); ++i) {
      EXPECT_EQ(rest[i].status, all[skip + i].status) << skip << "/" << i;
      EXPECT_EQ(rest[i].elems, all[skip + i].elems) << skip << "/" << i;
      EXPECT_EQ(rest[i].first_prefix, all[skip + i].first_prefix)
          << skip << "/" << i;
      if (skip > 0) {
        // Records after a skip are never re-marked Start; End survives.
        EXPECT_NE(rest[i].position, int(DumpPosition::Start))
            << skip << "/" << i;
      } else {
        EXPECT_EQ(rest[i].position, all[i].position) << i;
      }
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// DumpReader::Checkpoint — the O(1) idle-reclaim resume path — must
// reconstruct the exact Next() tail by seeking, reading only the frames
// it re-produces, with the PEER_INDEX_TABLE restored from the snapshot
// so post-resume RIB records still decompose into per-VP elems.
TEST(DumpReaderCheckpointTest, SeekResumeReproducesTailAcrossARibDump) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_checkpoint_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "rib.mrt").string();
  constexpr int kRibRecords = 12;
  {
    mrt::MrtFileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    mrt::PeerIndexTable pit;
    pit.collector_bgp_id = 0x0a000001;
    mrt::PeerEntry pe;
    pe.bgp_id = 0x0a000002;
    pe.address = IpAddress::V4(10, 0, 0, 2);
    pe.asn = 65001;
    pit.peers.push_back(pe);
    ASSERT_TRUE(w.Write(mrt::EncodePeerIndexTable(1458000000, pit)).ok());
    for (int i = 0; i < kRibRecords; ++i) {
      mrt::RibPrefix rib;
      rib.sequence = uint32_t(i);
      rib.prefix = Prefix(IpAddress::V4(uint32_t(20 + i) << 24), 16);
      mrt::RibEntry e;
      e.peer_index = 0;
      e.originated_time = 1458000000;
      e.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      e.attrs.next_hop = IpAddress::V4(10, 0, 0, 2);
      rib.entries.push_back(std::move(e));
      ASSERT_TRUE(
          w.Write(mrt::EncodeRibPrefix(1458000000, rib, IpFamily::V4)).ok());
    }
    ASSERT_TRUE(w.Close().ok());
  }
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "rib";
  meta.type = DumpType::Rib;
  meta.start = 1458000000;
  meta.duration = 300;
  meta.path = path;

  struct Fp {
    int position;
    int status;
    size_t elems;
    std::string first_prefix;
  };
  auto fingerprint = [](const Record& rec) {
    auto elems = ExtractElems(rec);
    return Fp{int(rec.position), int(rec.status), elems.size(),
              elems.empty() ? "" : elems[0].prefix.ToString()};
  };

  // Baseline pass, capturing every record's checkpoint.
  std::vector<Fp> all;
  std::vector<DumpReader::Checkpoint> cps;
  {
    DumpReader reader(meta);
    while (auto rec = reader.Next()) {
      all.push_back(fingerprint(*rec));
      cps.push_back(reader.last_checkpoint());
    }
  }
  constexpr size_t kTotal = 1 + kRibRecords;  // peer index + RIBs
  ASSERT_EQ(all.size(), kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(cps[i].valid) << i;
    EXPECT_EQ(cps[i].index, i);
  }
  // The table is in effect for every record after the one that carries
  // it — and snapshotted *pre*-record, so record 0's checkpoint has
  // none and record 1's does.
  EXPECT_EQ(cps[0].peer_index, nullptr);
  ASSERT_NE(cps[1].peer_index, nullptr);

  for (size_t k : {size_t(0), size_t(1), size_t(5), kTotal - 1}) {
    DumpReader reader(meta, cps[k]);
    std::vector<Fp> rest;
    while (auto rec = reader.Next()) rest.push_back(fingerprint(*rec));
    ASSERT_EQ(rest.size(), kTotal - k) << "resume at " << k;
    for (size_t i = 0; i < rest.size(); ++i) {
      EXPECT_EQ(rest[i].status, all[k + i].status) << k << "/" << i;
      // Peer-index table intact: identical elem decomposition.
      EXPECT_EQ(rest[i].elems, all[k + i].elems) << k << "/" << i;
      EXPECT_EQ(rest[i].first_prefix, all[k + i].first_prefix)
          << k << "/" << i;
      EXPECT_EQ(rest[i].position, all[k + i].position) << k << "/" << i;
    }
    // Read accounting: the seek resume frames only the records it
    // re-produces — never the prefix in front of the checkpoint.
    EXPECT_EQ(reader.frames_read(), kTotal - k) << "resume at " << k;
  }

  // The dump vanished before the resume (archive rotation): a mid-file
  // checkpoint ends silently — matching the Skip fallback's exhaustion
  // behavior — while an index-0 one behaves like a fresh failed open
  // (one CorruptedDump record).
  std::error_code ec;
  fs::remove_all(dir, ec);
  {
    DumpReader reader(meta, cps[5]);
    EXPECT_EQ(reader.Next(), std::nullopt);
  }
  {
    DumpReader reader(meta, cps[0]);
    auto rec = reader.Next();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, RecordStatus::CorruptedDump);
    EXPECT_EQ(reader.Next(), std::nullopt);
  }
}

// Idle-reclaim resume on a large RIB dump: the refill must seek to the
// stored checkpoint (one extra file open, zero re-framed prefix
// records) and the emitted sequence — per-VP elems included — must be
// identical to an undisturbed decode.
TEST(PrefetchDecoderTest, ReclaimResumeSeeksInsteadOfRereadingLargeFile) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_seek_resume_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "big_rib.mrt").string();
  constexpr size_t kRibRecords = 4000;
  {
    mrt::MrtFileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    mrt::PeerIndexTable pit;
    pit.collector_bgp_id = 0x0a000001;
    mrt::PeerEntry pe;
    pe.bgp_id = 0x0a000002;
    pe.address = IpAddress::V4(10, 0, 0, 2);
    pe.asn = 65001;
    pit.peers.push_back(pe);
    ASSERT_TRUE(w.Write(mrt::EncodePeerIndexTable(1458000000, pit)).ok());
    for (size_t i = 0; i < kRibRecords; ++i) {
      mrt::RibPrefix rib;
      rib.sequence = uint32_t(i);
      rib.prefix =
          Prefix(IpAddress::V4(10, uint8_t(i >> 8), uint8_t(i & 0xff), 0), 24);
      mrt::RibEntry e;
      e.peer_index = 0;
      e.originated_time = 1458000000;
      e.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      e.attrs.next_hop = IpAddress::V4(10, 0, 0, 2);
      rib.entries.push_back(std::move(e));
      ASSERT_TRUE(
          w.Write(mrt::EncodeRibPrefix(1458000000, rib, IpFamily::V4)).ok());
    }
    ASSERT_TRUE(w.Close().ok());
  }
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "bigrib";
  meta.type = DumpType::Rib;
  meta.start = 1458000000;
  meta.duration = 300;
  meta.path = path;
  constexpr size_t kTotal = 1 + kRibRecords;

  std::vector<std::string> expect;  // first-elem prefix per record
  {
    DecodedDump dump = DecodeDumpFile(meta);
    ASSERT_EQ(dump.records.size(), kTotal);
    for (const auto& rec : dump.records) {
      auto elems = ExtractElems(rec);
      expect.push_back(elems.empty() ? "" : elems[0].prefix.ToString());
    }
  }

  auto ex = std::make_shared<Executor>(Executor::Options{.threads = 2});
  std::atomic<size_t> opens{0};
  PrefetchDecoder::Options opt;
  opt.executor = ex;
  opt.max_records_in_flight = 64;
  opt.idle_reclaim_rounds = 5;
  opt.decode.file_open_hook = [&opens](const DumpFileMeta&) { ++opens; };
  PrefetchDecoder decoder(std::move(opt));
  decoder.Submit({meta});
  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 1u);

  // Drain most of the file, then pause the consumer mid-stream.
  constexpr size_t kBeforePause = 3000;
  std::vector<std::string> got;
  for (size_t i = 0; i < kBeforePause; ++i) {
    auto rec = sources[0]->Next();
    ASSERT_TRUE(rec.has_value()) << i;
    auto elems = ExtractElems(*rec);
    got.push_back(elems.empty() ? "" : elems[0].prefix.ToString());
  }

  auto wait_for = [](auto pred) {
    auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  };
  // Let the fill tasks settle: refills are only scheduled when a pop
  // finds the buffer at or below half capacity, so after the pause the
  // buffer rests anywhere above half (a still-running fill tops it to
  // capacity). Then drive the waiter-driven trigger exactly as a
  // governor contention hook would. (A busy fill just defers the pass:
  // it retries on unclaim; and if dispatch already crossed the idle
  // threshold on its own the pass may have fired early, which the ||
  // arm absorbs.)
  ASSERT_TRUE(wait_for([&] {
    return (decoder.buffered_records() > 32 && decoder.queued_tasks() == 0) ||
           decoder.reclaims() >= 1;
  }));
  // Mark/confirm needs at least two signals with no consumer activity
  // in between; keep signalling (as a blocked governor Acquire would)
  // until the pass fires.
  {
    auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (decoder.reclaims() == 0 &&
           std::chrono::steady_clock::now() < until) {
      ex->RequestReclaimTick();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_TRUE(wait_for([&] { return decoder.reclaims() >= 1; }));
  ASSERT_TRUE(wait_for([&] { return decoder.buffered_records() == 0; }));

  // Resume: the tail re-decodes from the checkpoint seek — no
  // re-open-and-Skip pass, exactly one extra file open — and matches
  // the undisturbed sequence, per-VP elems intact.
  while (auto rec = sources[0]->Next()) {
    auto elems = ExtractElems(*rec);
    got.push_back(elems.empty() ? "" : elems[0].prefix.ToString());
  }
  EXPECT_EQ(got.size(), expect.size());
  EXPECT_EQ(got, expect);
  EXPECT_GE(decoder.reclaims(), 1u);
  EXPECT_GE(decoder.seek_resumes(), 1u);
  EXPECT_EQ(decoder.skip_resumes(), 0u);
  EXPECT_EQ(opens.load(), 1u + decoder.seek_resumes());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// K reclaim-enabled decoders sharing one executor and one governor pool
// a single contention hook through the ReclaimTickRegistry — the hook
// list must not grow K-wide (each re-signal would fire K redundant
// reclaim ticks), and the hook must outlive any individual decoder
// while at least one share remains.
TEST(PrefetchDecoderTest, DecodersSharingExecutorPoolOneContentionHook) {
  auto gov = std::make_shared<MemoryGovernor>(8);
  Executor::Options eopt;
  eopt.threads = 2;
  auto executor = std::make_shared<Executor>(eopt);
  ASSERT_EQ(gov->contention_hook_count(), 0u);

  std::vector<std::unique_ptr<PrefetchDecoder>> decoders;
  for (int i = 0; i < 4; ++i) {
    PrefetchDecoder::Options opt;
    opt.executor = executor;
    opt.governor = gov;
    opt.max_records_in_flight = 16;
    opt.idle_reclaim_rounds = 3;
    decoders.push_back(std::make_unique<PrefetchDecoder>(std::move(opt)));
    EXPECT_EQ(gov->contention_hook_count(), 1u);
  }

  // A decoder with a private executor is a distinct (governor, executor)
  // pair and rightly gets its own hook — scoped, so it unhooks on exit.
  {
    PrefetchDecoder::Options solo;
    solo.threads = 1;
    solo.governor = gov;
    solo.max_records_in_flight = 16;
    solo.idle_reclaim_rounds = 3;
    PrefetchDecoder lone(std::move(solo));
    EXPECT_EQ(gov->contention_hook_count(), 2u);
  }
  EXPECT_EQ(gov->contention_hook_count(), 1u);

  // The pooled hook survives until the LAST sharing decoder is gone.
  while (decoders.size() > 1) {
    decoders.pop_back();
    EXPECT_EQ(gov->contention_hook_count(), 1u);
  }
  decoders.clear();
  EXPECT_EQ(gov->contention_hook_count(), 0u);
}

// The executor+governor embedding without a StreamPool: the decoder
// wires the governor's contention hook itself, so a paused consumer's
// buffers are reclaimed for a blocked rival demand with no manual
// ticking and no timer anywhere — and the stream still resumes
// losslessly.
TEST(PrefetchDecoderTest, BlockedGovernorDemandTriggersReclaimWithoutPool) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_hook_reclaim_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "updates.mrt").string();
  constexpr size_t kRecords = 600;
  {
    mrt::MrtFileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    for (size_t i = 0; i < kRecords; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = 65001;
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, 0, 0, 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(10, uint8_t(i >> 8), uint8_t(i & 0xff), 0),
                 24));
      ASSERT_TRUE(w.Write(mrt::EncodeBgp4mpUpdate(
                              1458000000 + Timestamp(i), m)).ok());
    }
    ASSERT_TRUE(w.Close().ok());
  }
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "hooked";
  meta.type = DumpType::Updates;
  meta.start = 1458000000;
  meta.duration = 3600;
  meta.path = path;

  auto gov = std::make_shared<MemoryGovernor>(24);
  PrefetchDecoder::Options opt;
  opt.threads = 2;  // private executor: nobody but the decoder wires hooks
  opt.governor = gov;
  opt.max_records_in_flight = 16;
  opt.idle_reclaim_rounds = 3;
  PrefetchDecoder decoder(std::move(opt));
  ASSERT_TRUE(gov->Acquire(1).ok());  // the subset's floor slot
  decoder.Submit({meta});
  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 1u);

  std::vector<Timestamp> got;
  for (size_t i = 0; i < 100; ++i) {
    auto rec = sources[0]->Next();
    ASSERT_TRUE(rec.has_value()) << i;
    got.push_back(rec->timestamp);
  }

  auto wait_for = [](auto pred) {
    auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  };
  // Consumer paused with a loaded buffer; its leases stay parked...
  ASSERT_TRUE(wait_for([&] {
    return decoder.buffered_records() > 8 && decoder.queued_tasks() == 0;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(decoder.reclaims(), 0u);  // no contention, no reclaim

  // ...until a rival demand blocks: its re-signals alone drive the
  // mark/confirm reclaim through the decoder-wired hook, free the
  // leases, and thereby unblock the rival.
  std::thread rival([&] {
    Status st = gov->Acquire(23);
    EXPECT_TRUE(st.ok()) << st.ToString();
    gov->Release(23);
  });
  ASSERT_TRUE(wait_for([&] { return decoder.reclaims() >= 1; }));
  rival.join();

  // Resume: the tail matches an undisturbed decode.
  while (auto rec = sources[0]->Next()) got.push_back(rec->timestamp);
  ASSERT_EQ(got.size(), kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(got[i], Timestamp(1458000000 + i)) << i;
  }
  EXPECT_GE(decoder.seek_resumes() + decoder.skip_resumes(), 1u);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Regression: reclaim must release the per-file floor slots too. A
// reclaimed tenant that never drains another record used to keep one
// floor slot per file parked forever, so a rival demanding the *full*
// budget could never be granted. Post-fix the tenant's governor
// footprint drains to zero and the floor is re-acquired (fair FIFO)
// only when the consumer actually resumes.
TEST(PrefetchDecoderTest, ReclaimReleasesFloorSlotsOfNeverDrainedTenant) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_floor_release_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "updates.mrt").string();
  constexpr size_t kRecords = 600;
  {
    mrt::MrtFileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    for (size_t i = 0; i < kRecords; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = 65001;
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, 0, 0, 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(10, uint8_t(i >> 8), uint8_t(i & 0xff), 0),
                 24));
      ASSERT_TRUE(w.Write(mrt::EncodeBgp4mpUpdate(
                              1458000000 + Timestamp(i), m)).ok());
    }
    ASSERT_TRUE(w.Close().ok());
  }
  DumpFileMeta meta;
  meta.project = "test";
  meta.collector = "floored";
  meta.type = DumpType::Updates;
  meta.start = 1458000000;
  meta.duration = 3600;
  meta.path = path;

  constexpr size_t kBudget = 24;
  auto gov = std::make_shared<MemoryGovernor>(kBudget);
  PrefetchDecoder::Options opt;
  opt.threads = 2;  // private executor: the decoder wires the hook itself
  opt.governor = gov;
  opt.max_records_in_flight = 16;
  opt.idle_reclaim_rounds = 3;
  PrefetchDecoder decoder(std::move(opt));
  ASSERT_TRUE(gov->Acquire(1).ok());  // the subset's floor slot
  decoder.Submit({meta});
  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 1u);

  auto wait_for = [](auto pred) {
    auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  };
  // The consumer never pops a single record; the fills settle with a
  // loaded buffer whose leases (floor included) are all parked.
  ASSERT_TRUE(wait_for([&] {
    return decoder.buffered_records() > 8 && decoder.queued_tasks() == 0;
  }));

  // A rival demanding the ENTIRE budget is only grantable if the
  // reclaim releases every lease — the floor slot too. Pre-fix the
  // floor stayed parked (in_use == 1) and this Acquire hung forever.
  std::atomic<bool> granted{false};
  std::thread rival([&] {
    Status st = gov->Acquire(kBudget);
    EXPECT_TRUE(st.ok()) << st.ToString();
    granted.store(true);
    gov->Release(kBudget);
  });
  ASSERT_TRUE(wait_for([&] { return decoder.reclaims() >= 1; }));
  ASSERT_TRUE(wait_for([&] { return granted.load(); }));
  rival.join();
  // The never-resumed tenant's governor footprint is zero.
  ASSERT_TRUE(wait_for([&] { return gov->in_use() == 0; }));

  // Resume: the refill's open leg re-acquires the floor through the
  // fair FIFO Acquire and the tail matches an undisturbed decode.
  std::vector<Timestamp> got;
  while (auto rec = sources[0]->Next()) got.push_back(rec->timestamp);
  ASSERT_EQ(got.size(), kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(got[i], Timestamp(1458000000 + i)) << i;
  }
  EXPECT_GE(decoder.seek_resumes() + decoder.skip_resumes(), 1u);
  // Fully drained: the ledger balances back to zero.
  ASSERT_TRUE(wait_for([&] { return gov->in_use() == 0; }));
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Regression: a deadline-class tenant's file *open* must not wait
// behind a rival tenant's whole decode burst. The fill task used to
// open the file and decode to buffer capacity in one task, so on a
// busy pool a queued open (pure archive latency) sat behind an entire
// CPU burst. Post-fix the open is its own task that re-submits the
// burst with a fresh (later) stamp, so EDF runs the next tenant's open
// first — at B's open hook, A has opened but buffered nothing yet.
TEST(PrefetchDecoderTest, DeadlineOpenDoesNotWaitBehindRivalDecodeBurst) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("bgps_open_split_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  auto write_updates = [&](const std::string& name, size_t n) {
    std::string path = (dir / name).string();
    mrt::MrtFileWriter w;
    EXPECT_TRUE(w.Open(path).ok());
    for (size_t i = 0; i < n; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = 65001;
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, 0, 0, 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path = bgp::AsPath::Sequence({65001, 15169});
      m.update.attrs.next_hop = IpAddress::V4(10, 0, 0, 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(10, uint8_t(i >> 8), uint8_t(i & 0xff), 0),
                 24));
      EXPECT_TRUE(w.Write(mrt::EncodeBgp4mpUpdate(
                              1458000000 + Timestamp(i), m)).ok());
    }
    EXPECT_TRUE(w.Close().ok());
    return path;
  };
  auto meta_for = [](const std::string& path, const std::string& collector) {
    DumpFileMeta meta;
    meta.project = "test";
    meta.collector = collector;
    meta.type = DumpType::Updates;
    meta.start = 1458000000;
    meta.duration = 3600;
    meta.path = path;
    return meta;
  };
  DumpFileMeta meta_a = meta_for(write_updates("a.mrt", 200), "tenant-a");
  DumpFileMeta meta_b = meta_for(write_updates("b.mrt", 50), "tenant-b");

  auto wait_for = [](auto pred) {
    auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  };

  // One worker, blocked by a gate tenant while both decoders enqueue
  // their initial fills — so the claim order after the gate opens is
  // decided purely by the deadline class's EDF rule.
  auto ex = std::make_shared<Executor>(Executor::Options{.threads = 1});
  auto gate_tenant = ex->CreateTenant();
  std::promise<void> gate;
  std::shared_future<void> opened_gate = gate.get_future().share();
  std::atomic<bool> gate_entered{false};
  gate_tenant->Submit([opened_gate, &gate_entered] {
    gate_entered.store(true);
    opened_gate.wait();
  });
  ASSERT_TRUE(wait_for([&] { return gate_entered.load(); }));

  PrefetchDecoder::Options opt_a;
  opt_a.executor = ex;
  opt_a.max_records_in_flight = 16;
  opt_a.tenant_deadline = true;
  PrefetchDecoder a(std::move(opt_a));

  std::atomic<bool> b_opened{false};
  std::atomic<size_t> a_buffered_at_b_open{size_t(-1)};
  PrefetchDecoder::Options opt_b;
  opt_b.executor = ex;
  opt_b.max_records_in_flight = 16;
  opt_b.tenant_deadline = true;
  opt_b.decode.file_open_hook = [&](const DumpFileMeta&) {
    a_buffered_at_b_open.store(a.buffered_records());
    b_opened.store(true);
  };
  PrefetchDecoder b(std::move(opt_b));

  a.Submit({meta_a});  // enqueued first: EDF opens A first...
  b.Submit({meta_b});
  auto sources_a = a.WaitNextSources();
  auto sources_b = b.WaitNextSources();
  gate.set_value();

  ASSERT_TRUE(wait_for([&] { return b_opened.load(); }));
  // ...but A's decode burst carries a *later* stamp than B's queued
  // open, so B opens before A buffers anything. Pre-fix, A's single
  // open+decode task had already filled its buffer to capacity (16)
  // when B's open finally ran.
  EXPECT_EQ(a_buffered_at_b_open.load(), 0u);

  // Sanity: both streams still decode completely and in order.
  std::vector<Timestamp> got_a, got_b;
  while (auto rec = sources_a[0]->Next()) got_a.push_back(rec->timestamp);
  while (auto rec = sources_b[0]->Next()) got_b.push_back(rec->timestamp);
  ASSERT_EQ(got_a.size(), 200u);
  ASSERT_EQ(got_b.size(), 50u);
  for (size_t i = 0; i < got_a.size(); ++i) {
    EXPECT_EQ(got_a[i], Timestamp(1458000000 + i)) << i;
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PrefetchDecoderTest, ReturnsSubsetsInSubmitOrderWithFileOrderKept) {
  PrefetchDecoder::Options opt;
  opt.threads = 3;
  PrefetchDecoder decoder(std::move(opt));

  decoder.Submit(BogusSubset("a", 5));
  decoder.Submit(BogusSubset("b", 3));
  decoder.Submit(BogusSubset("c", 1));
  EXPECT_EQ(decoder.outstanding(), 3u);

  auto a = decoder.WaitNext();
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].meta.collector, "a-" + std::to_string(i));
    ASSERT_EQ(a[i].records.size(), 1u);
    EXPECT_EQ(a[i].records[0].status, RecordStatus::CorruptedDump);
  }
  auto b = decoder.WaitNext();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].meta.collector, "b-0");
  auto c = decoder.WaitNext();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].meta.collector, "c-0");
  EXPECT_EQ(decoder.outstanding(), 0u);
  EXPECT_EQ(decoder.files_decoded(), 9u);
}

TEST(PrefetchDecoderTest, DecodesAheadOfConsumption) {
  PrefetchDecoder::Options opt;
  opt.threads = 2;
  PrefetchDecoder decoder(std::move(opt));
  decoder.Submit(BogusSubset("first", 2));
  decoder.Submit(BogusSubset("second", 4));

  // Consume only the first subset, then watch the workers finish the
  // second one on their own — that is the "ahead of the consumer" part.
  (void)decoder.WaitNext();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (decoder.files_decoded() < 6 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(decoder.files_decoded(), 6u);
  EXPECT_EQ(decoder.outstanding(), 1u);  // decoded but not yet consumed
}

TEST(PrefetchDecoderTest, DestructorJoinsWithUnconsumedWork) {
  PrefetchDecoder::Options opt;
  opt.threads = 2;
  PrefetchDecoder decoder(std::move(opt));
  decoder.Submit(BogusSubset("left", 8));
  // Dropping the decoder with queued/decoded-but-unconsumed work must not
  // hang or crash.
}

TEST(PrefetchDecoderTest, WholeFileInFlightMatchesOutstanding) {
  PrefetchDecoder::Options opt;
  opt.threads = 2;
  PrefetchDecoder decoder(std::move(opt));
  decoder.Submit(BogusSubset("a", 3));
  decoder.Submit(BogusSubset("b", 2));
  EXPECT_EQ(decoder.outstanding(), 2u);
  EXPECT_EQ(decoder.in_flight(), 2u);
  (void)decoder.WaitNext();
  EXPECT_EQ(decoder.outstanding(), 1u);
  EXPECT_EQ(decoder.in_flight(), 1u);  // whole-file: handed out = gone
}

TEST(PrefetchDecoderTest, ChunkedSourcesStreamInFileOrder) {
  PrefetchDecoder::Options opt;
  opt.threads = 3;
  opt.max_records_in_flight = 2;  // 5 files -> 1 buffered record per file
  PrefetchDecoder decoder(std::move(opt));
  decoder.Submit(BogusSubset("a", 5));
  EXPECT_EQ(decoder.outstanding(), 1u);

  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 5u);
  EXPECT_EQ(decoder.outstanding(), 0u);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(sources[i]->meta().collector, "a-" + std::to_string(i));
    ASSERT_TRUE(sources[i]->PeekTimestamp().has_value());
    auto rec = sources[i]->Next();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, RecordStatus::CorruptedDump);
    EXPECT_EQ(rec->collector, "a-" + std::to_string(i));
    EXPECT_EQ(sources[i]->Next(), std::nullopt);  // one record per bogus file
  }
  // Drained: the subset no longer holds decode resources.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (decoder.in_flight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(decoder.in_flight(), 0u);
  EXPECT_EQ(decoder.files_decoded(), 5u);
  EXPECT_GT(decoder.max_buffered_records(), 0u);
  EXPECT_LE(decoder.max_buffered_records(), 5u);  // 1-slot buffer per file
}

TEST(PrefetchDecoderTest, ChunkedInFlightCountsActiveSubsets) {
  PrefetchDecoder::Options opt;
  opt.threads = 2;
  opt.max_records_in_flight = 8;
  PrefetchDecoder decoder(std::move(opt));
  decoder.Submit(BogusSubset("x", 2));
  decoder.Submit(BogusSubset("y", 2));
  EXPECT_EQ(decoder.in_flight(), 2u);

  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(decoder.outstanding(), 1u);
  // Handed out but not yet drained: still holds decode resources.
  EXPECT_EQ(decoder.in_flight(), 2u);
  for (auto& s : sources) {
    while (s->Next()) {
    }
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (decoder.in_flight() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(decoder.in_flight(), 1u);  // only the queued subset remains
}

TEST(PrefetchDecoderTest, SharedExecutorDecodersKeepFifoOrder) {
  // Two decoders as tenants of one executor: each still returns its own
  // subsets in its own Submit order.
  auto executor = std::make_shared<Executor>(Executor::Options{.threads = 2});
  PrefetchDecoder::Options opt_a;
  opt_a.executor = executor;
  PrefetchDecoder::Options opt_b;
  opt_b.executor = executor;
  PrefetchDecoder a(std::move(opt_a));
  PrefetchDecoder b(std::move(opt_b));
  a.Submit(BogusSubset("a1", 3));
  b.Submit(BogusSubset("b1", 2));
  a.Submit(BogusSubset("a2", 1));
  EXPECT_EQ(a.WaitNext()[0].meta.collector, "a1-0");
  EXPECT_EQ(b.WaitNext()[0].meta.collector, "b1-0");
  EXPECT_EQ(a.WaitNext()[0].meta.collector, "a2-0");
  EXPECT_EQ(executor->tenants(), 2u);
}

TEST(PrefetchDecoderTest, ChunkedGovernorLedgerBalancesOnDrain) {
  auto governor = std::make_shared<MemoryGovernor>(8);
  PrefetchDecoder::Options opt;
  opt.threads = 2;
  opt.max_records_in_flight = 8;
  opt.governor = governor;
  PrefetchDecoder decoder(std::move(opt));

  // Per the Options::governor contract the caller acquires one floor
  // slot per file before a chunked Submit.
  ASSERT_TRUE(governor->TryAcquire(3));
  decoder.Submit(BogusSubset("gov", 3));
  auto sources = decoder.WaitNextSources();
  ASSERT_EQ(sources.size(), 3u);
  for (auto& s : sources) {
    while (s->Next()) {
    }
  }
  // Fully decoded and drained: every slot (floors + extras) returns to
  // the global budget.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (governor->in_use() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(governor->in_use(), 0u);
  EXPECT_GT(governor->max_in_use(), 0u);
  EXPECT_LE(governor->max_in_use(), 8u);
}

TEST(PrefetchDecoderTest, ChunkedGovernorLedgerBalancesOnDestruction) {
  auto governor = std::make_shared<MemoryGovernor>(8);
  {
    PrefetchDecoder::Options opt;
    opt.threads = 2;
    opt.max_records_in_flight = 8;
    opt.governor = governor;
    PrefetchDecoder decoder(std::move(opt));
    ASSERT_TRUE(governor->TryAcquire(4));
    decoder.Submit(BogusSubset("dropped", 4));
    // Destroyed with the subset undrained (possibly still filling).
  }
  EXPECT_EQ(governor->in_use(), 0u);
}

TEST(PrefetchDecoderTest, ChunkedSourcesSurviveDecoderDestruction) {
  std::vector<std::unique_ptr<RecordSource>> sources;
  {
    PrefetchDecoder::Options opt;
    opt.threads = 2;
    opt.max_records_in_flight = 8;
    PrefetchDecoder decoder(std::move(opt));
    decoder.Submit(BogusSubset("gone", 3));
    sources = decoder.WaitNextSources();
    // Give workers a chance to buffer; either way the sources must not
    // hang after the decoder (and its workers) are gone.
  }
  for (auto& s : sources) {
    while (auto rec = s->Next()) {
      EXPECT_EQ(rec->status, RecordStatus::CorruptedDump);
    }
  }
}

class PrefetchStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& a = testutil::GetSmallArchive();
    root_ = a.root;
    start_ = a.start;
    end_ = a.end;
  }

  // Runs a full historical stream and fingerprints every record.
  struct RunResult {
    std::vector<std::tuple<Timestamp, std::string, int, int, int>> records;
    size_t subsets = 0;
    size_t max_open = 0;
    size_t elems = 0;
  };
  RunResult Run(BgpStream::Options options) {
    broker::Broker::Options bopt;
    bopt.clock = [] { return Timestamp(4102444800); };
    broker::Broker broker(root_, bopt);
    BrokerDataInterface di(&broker);
    BgpStream stream(std::move(options));
    stream.SetInterval(start_, end_);
    stream.SetDataInterface(&di);
    EXPECT_TRUE(stream.Start().ok());
    RunResult out;
    while (auto rec = stream.NextRecord()) {
      out.records.emplace_back(rec->timestamp, rec->collector,
                               int(rec->dump_type), int(rec->status),
                               int(rec->position));
      out.elems += stream.Elems(*rec).size();
    }
    out.subsets = stream.subsets_merged();
    out.max_open = stream.max_open_files();
    return out;
  }

  std::string root_;
  Timestamp start_ = 0, end_ = 0;
};

TEST_F(PrefetchStreamTest, PrefetchedStreamMatchesSynchronousStream) {
  RunResult sync = Run({});

  BgpStream::Options prefetch;
  prefetch.prefetch_subsets = 3;
  prefetch.decode_threads = 2;
  std::atomic<size_t> opens{0};
  prefetch.file_open_hook = [&](const DumpFileMeta&) { ++opens; };
  RunResult async = Run(std::move(prefetch));

  ASSERT_GT(sync.records.size(), 100u);
  EXPECT_EQ(async.records, sync.records);
  EXPECT_EQ(async.subsets, sync.subsets);
  EXPECT_EQ(async.max_open, sync.max_open);
  EXPECT_EQ(async.elems, sync.elems);
  EXPECT_GT(opens.load(), 0u);
}

TEST_F(PrefetchStreamTest, LiveModeWithPrefetchTerminatesOnPollCap) {
  Timestamp now = start_ + 301;
  broker::Broker::Options bopt;
  bopt.clock = [&now] { return now; };
  broker::Broker broker(root_, bopt);
  BrokerDataInterface di(&broker);

  BgpStream::Options opt;
  opt.prefetch_subsets = 2;
  opt.poll_wait = [&] { now += 300; };
  opt.max_consecutive_polls = 500;
  BgpStream stream(std::move(opt));
  stream.SetLive(start_);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  size_t records = 0;
  while (auto rec = stream.NextRecord()) ++records;
  EXPECT_GT(records, 100u);  // the whole archive eventually streams
}

// A data interface that never has data: live mode must give up after
// exactly max_consecutive_polls empty polls (Options safety valve).
class NeverReadyInterface : public DataInterface {
 public:
  DataBatch NextBatch(const FilterSet&) override {
    DataBatch b;
    b.retry_later = true;
    return b;
  }
  void Refresh() override { ++refreshes; }
  size_t refreshes = 0;
};

TEST(BgpStreamLiveTest, MaxConsecutivePollsStopsAnEmptyLiveStream) {
  NeverReadyInterface di;
  BgpStream::Options opt;
  size_t polls = 0;
  opt.poll_wait = [&polls] { ++polls; };
  opt.max_consecutive_polls = 7;
  BgpStream stream(std::move(opt));
  stream.SetLive(0);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  EXPECT_EQ(stream.NextRecord(), std::nullopt);
  // The cap counts empty polls; the final poll is cut short before its
  // wait, so exactly cap-1 waits (and refreshes) happen.
  EXPECT_EQ(polls, 6u);
  EXPECT_EQ(di.refreshes, 6u);
  // The stream stays terminated afterwards.
  EXPECT_EQ(stream.NextRecord(), std::nullopt);
  EXPECT_EQ(polls, 6u);
}

}  // namespace
}  // namespace bgps::core
