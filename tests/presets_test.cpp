// Scenario-preset invariants: the scripted case studies must put exactly
// the right signals into the archives the benches consume.
#include <gtest/gtest.h>

#include <filesystem>

#include "corsaro/corsaro.hpp"
#include "corsaro/pfxmonitor.hpp"
#include "sim/presets.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::sim {
namespace {

std::string TmpDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "_" + std::to_string(::getpid())))
      .string();
}

TEST(GarrScenario, PlantsActorsAndWindows) {
  auto sc = BuildGarrScenario(TmpDir("garr"), 2, 77);
  EXPECT_TRUE(sc.driver->topology().has_node(sc.victim));
  EXPECT_TRUE(sc.driver->topology().has_node(sc.attacker));
  EXPECT_EQ(sc.victim_prefixes.size(), 12u);
  EXPECT_EQ(sc.hijacked.size(), 7u);
  // Two days only cover the first scripted event.
  ASSERT_EQ(sc.hijack_windows.size(), 1u);
  EXPECT_GE(sc.hijack_windows[0].first, sc.start);
  EXPECT_LT(sc.hijack_windows[0].second, sc.end);
  // After the run, the hijack is over: prefixes are victim-only.
  for (const auto& p : sc.hijacked) {
    auto origins = sc.driver->world().origins(p);
    ASSERT_EQ(origins.size(), 1u) << p.ToString();
    EXPECT_EQ(origins[0].asn, sc.victim);
  }
  std::filesystem::remove_all(sc.driver->archive_root());
}

TEST(GarrScenario, ArchiveContainsAttackerAnnouncements) {
  auto sc = BuildGarrScenario(TmpDir("garr2"), 2, 78);
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(sc.driver->archive_root(), bopt);
  core::BrokerDataInterface di(&broker);
  core::BgpStream stream;
  (void)stream.AddFilter("type", "updates");
  stream.SetInterval(sc.start, sc.end);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  size_t attacker_announcements = 0;
  while (auto rec = stream.NextRecord()) {
    for (const auto& elem : stream.Elems(*rec)) {
      if (elem.type != core::ElemType::Announcement) continue;
      if (elem.as_path.origin_asn() == sc.attacker &&
          std::find(sc.hijacked.begin(), sc.hijacked.end(), elem.prefix) !=
              sc.hijacked.end()) {
        ++attacker_announcements;
      }
    }
  }
  EXPECT_GT(attacker_announcements, 0u);
  std::filesystem::remove_all(sc.driver->archive_root());
}

TEST(CountryOutageScenario, WithdrawsCountryPrefixes) {
  auto sc = BuildCountryOutageScenario(TmpDir("outage"), 9, 90);
  ASSERT_EQ(sc.isps.size(), 5u);
  ASSERT_FALSE(sc.outage_windows.empty());
  for (Asn isp : sc.isps) {
    ASSERT_TRUE(sc.driver->topology().has_node(isp));
    EXPECT_EQ(sc.driver->topology().node(isp).country, sc.country);
  }
  // After the run (past the last restore), everything is announced again.
  const auto& topo = sc.driver->topology();
  for (Asn isp : sc.isps) {
    for (const auto& p : topo.node(isp).prefixes) {
      EXPECT_EQ(sc.driver->world().origins(p).size(), 1u) << p.ToString();
    }
  }
  std::filesystem::remove_all(sc.driver->archive_root());
}

TEST(RtbhScenario, EventsCarryBlackholeCommunitiesAndMeasurements) {
  auto sc = BuildRtbhScenario(TmpDir("rtbh"), 4, 12, 9);
  ASSERT_EQ(sc.events.size(), 4u);
  for (const auto& ev : sc.events) {
    EXPECT_EQ(ev.target.length(), 32);
    EXPECT_FALSE(ev.tagged_providers.empty());
    EXPECT_GE(ev.probes.size(), 12u);
    EXPECT_LT(ev.start, ev.end);
    // Reachability must improve when the blackholing is lifted.
    size_t during = 0, after = 0;
    for (const auto& p : ev.probes) {
      during += p.during_reached_origin;
      after += p.after_reached_origin;
    }
    EXPECT_GE(after, during);
    EXPECT_EQ(after, ev.probes.size());  // clean paths after withdrawal
    // The blackhole is withdrawn after the event.
    EXPECT_TRUE(sc.driver->world().origins(ev.target).empty());
  }
  std::filesystem::remove_all(sc.driver->archive_root());
}

TEST(LongitudinalArchive, GrowthAndStructure) {
  LongitudinalOptions options;
  options.months = 24;
  options.collectors = 2;
  options.vps_per_collector = 4;
  options.topo.num_tier1 = 3;
  options.topo.num_transit = 8;
  options.topo.num_stub = 24;
  options.seed = 31;
  std::string root = TmpDir("longi");
  auto arch = BuildLongitudinalArchive(root, options);

  ASSERT_EQ(arch.snapshot_times.size(), 24u);
  // Snapshots are the 15th of each month.
  for (Timestamp ts : arch.snapshot_times) {
    EXPECT_EQ(CivilFromTimestamp(ts).day, 15);
  }
  // Provider-before-customer birth ordering.
  for (const auto& link : arch.topo.links()) {
    if (link.type != LinkType::CustomerProvider) continue;
    EXPECT_LE(arch.birth_month.at(link.a), arch.birth_month.at(link.b));
  }
  // Each collector wrote one RIB per month (some early ones may be empty
  // of VPs but the file still exists once any VP joined).
  broker::ArchiveIndex index(root);
  ASSERT_TRUE(index.Rescan().ok());
  EXPECT_EQ(index.files().size(), 24u * 2u);
  for (const auto& f : index.files()) {
    EXPECT_EQ(f.type, broker::DumpType::Rib);
  }

  // reuse_existing: second build with the same options must not rewrite.
  auto before = std::filesystem::last_write_time(index.files()[0].path);
  LongitudinalOptions reuse = options;
  reuse.reuse_existing = true;
  auto arch2 = BuildLongitudinalArchive(root, reuse);
  EXPECT_EQ(std::filesystem::last_write_time(index.files()[0].path), before);
  EXPECT_EQ(arch2.snapshot_times, arch.snapshot_times);
  std::filesystem::remove_all(root);
}

TEST(LongitudinalArchive, TableGrowsOverTime) {
  LongitudinalOptions options;
  options.months = 36;
  options.collectors = 1;
  options.vps_per_collector = 3;
  options.topo.num_tier1 = 3;
  options.topo.num_transit = 8;
  options.topo.num_stub = 30;
  options.seed = 32;
  std::string root = TmpDir("longi2");
  auto arch = BuildLongitudinalArchive(root, options);

  auto count_rib_prefixes = [&](Timestamp snapshot) {
    size_t prefixes = 0;
    broker::ArchiveIndex index(root);
    EXPECT_TRUE(index.Rescan().ok());
    for (const auto& f : index.files()) {
      if (f.start != snapshot) continue;
      auto scan = mrt::ScanFile(f.path);
      EXPECT_TRUE(scan.ok());
      for (const auto& msg : scan->messages) {
        if (msg.is_rib()) ++prefixes;
      }
    }
    return prefixes;
  };
  size_t early = count_rib_prefixes(arch.snapshot_times[6]);
  size_t late = count_rib_prefixes(arch.snapshot_times.back());
  EXPECT_GT(late, early);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace bgps::sim
