// BGPReader ASCII formatting (paper §4.1).
#include <gtest/gtest.h>

#include "reader/ascii.hpp"

namespace bgps::reader {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

core::Record MakeRecord() {
  core::Record rec;
  rec.project = "ris";
  rec.collector = "rrc00";
  rec.dump_type = core::DumpType::Updates;
  rec.timestamp = 1463011200;
  rec.status = core::RecordStatus::Valid;
  rec.position = core::DumpPosition::Middle;
  return rec;
}

core::Elem MakeAnnouncement() {
  core::Elem e;
  e.type = core::ElemType::Announcement;
  e.time = 1463011200;
  e.peer_asn = 65001;
  e.peer_address = IpAddress::V4(10, 0, 0, 1);
  e.prefix = P("192.0.2.0/24");
  e.next_hop = IpAddress::V4(10, 0, 0, 1);
  e.as_path = bgp::AsPath::Sequence({65001, 3356, 15169});
  e.communities = {bgp::Community(3356, 100)};
  return e;
}

TEST(FormatElem, NativeAnnouncement) {
  std::string line =
      FormatElem(MakeRecord(), MakeAnnouncement(), OutputFormat::BgpReader);
  EXPECT_EQ(line,
            "A|1463011200|ris|rrc00|65001|10.0.0.1|192.0.2.0/24|10.0.0.1|"
            "65001 3356 15169|3356:100||");
}

TEST(FormatElem, NativeWithdrawal) {
  core::Elem e = MakeAnnouncement();
  e.type = core::ElemType::Withdrawal;
  std::string line = FormatElem(MakeRecord(), e, OutputFormat::BgpReader);
  EXPECT_TRUE(line.rfind("W|1463011200|ris|rrc00|65001|10.0.0.1|192.0.2.0/24",
                         0) == 0)
      << line;
}

TEST(FormatElem, NativePeerState) {
  core::Elem e;
  e.type = core::ElemType::PeerState;
  e.time = 1463011200;
  e.peer_asn = 65001;
  e.peer_address = IpAddress::V4(10, 0, 0, 1);
  e.old_state = bgp::FsmState::Established;
  e.new_state = bgp::FsmState::Idle;
  std::string line = FormatElem(MakeRecord(), e, OutputFormat::BgpReader);
  EXPECT_NE(line.find("ESTABLISHED|IDLE"), std::string::npos) << line;
}

TEST(FormatElem, BgpdumpAnnouncement) {
  std::string line =
      FormatElem(MakeRecord(), MakeAnnouncement(), OutputFormat::Bgpdump);
  EXPECT_EQ(line,
            "BGP4MP|1463011200|A|10.0.0.1|65001|192.0.2.0/24|"
            "65001 3356 15169|IGP|10.0.0.1|0|0|3356:100|NAG||");
}

TEST(FormatElem, BgpdumpRibEntryUsesTableDump2) {
  core::Record rec = MakeRecord();
  rec.dump_type = core::DumpType::Rib;
  core::Elem e = MakeAnnouncement();
  e.type = core::ElemType::RibEntry;
  std::string line = FormatElem(rec, e, OutputFormat::Bgpdump);
  EXPECT_TRUE(line.rfind("TABLE_DUMP2|", 0) == 0) << line;
  EXPECT_NE(line.find("|B|"), std::string::npos) << line;
}

TEST(FormatElem, BgpdumpWithdrawalShortForm) {
  core::Elem e = MakeAnnouncement();
  e.type = core::ElemType::Withdrawal;
  std::string line = FormatElem(MakeRecord(), e, OutputFormat::Bgpdump);
  EXPECT_EQ(line, "BGP4MP|1463011200|W|10.0.0.1|65001|192.0.2.0/24");
}

TEST(FormatRecord, AllFields) {
  core::Record rec = MakeRecord();
  rec.status = core::RecordStatus::CorruptedRecord;
  rec.position = core::DumpPosition::End;
  EXPECT_EQ(FormatRecord(rec),
            "1463011200|ris|rrc00|updates|corrupted-record|end");
}

TEST(FormatElem, V6Announcement) {
  core::Elem e = MakeAnnouncement();
  e.prefix = P("2001:db8::/32");
  e.next_hop = *IpAddress::Parse("2001:db8::1");
  std::string line = FormatElem(MakeRecord(), e, OutputFormat::BgpReader);
  EXPECT_NE(line.find("2001:db8::/32"), std::string::npos);
  EXPECT_NE(line.find("2001:db8::1"), std::string::npos);
}

}  // namespace
}  // namespace bgps::reader
