// Round-trip exactness of the record-plane fan-out codec
// (mq/serialize.hpp RecordBatchMessage / RecordWatermarkMessage): the
// fan-out identity pin rests on every header and elem field surviving
// encode/decode bit-for-bit, so this suite checks it two ways — a
// seeded synthetic property test sweeping the value space (v4/v6,
// AS_SET/AS_SEQUENCE paths, communities, FSM transitions), and real
// generated-corpus records under both ASN encodings.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <random>

#include "broker/archive.hpp"
#include "core/stream.hpp"
#include "mq/serialize.hpp"
#include "sim/corpus.hpp"

namespace bgps::mq {
namespace {

using broker::DumpFileMeta;

void ExpectElemEqual(const core::Elem& a, const core::Elem& b) {
  EXPECT_EQ(int(a.type), int(b.type));
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.peer_address, b.peer_address);
  EXPECT_EQ(a.peer_asn, b.peer_asn);
  EXPECT_EQ(a.prefix, b.prefix);
  EXPECT_EQ(a.next_hop, b.next_hop);
  EXPECT_EQ(a.as_path, b.as_path);  // segment-exact, not the text form
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (size_t i = 0; i < a.communities.size(); ++i)
    EXPECT_EQ(a.communities[i].raw(), b.communities[i].raw());
  EXPECT_EQ(int(a.old_state), int(b.old_state));
  EXPECT_EQ(int(a.new_state), int(b.new_state));
}

void ExpectBatchRoundTrip(const RecordBatchMessage& msg) {
  Bytes wire = EncodeRecordBatch(msg);
  auto decoded = DecodeRecordBatch(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->project, msg.project);
  EXPECT_EQ(decoded->collector, msg.collector);
  ASSERT_EQ(decoded->records.size(), msg.records.size());
  for (size_t i = 0; i < msg.records.size(); ++i) {
    const auto& in = msg.records[i];
    const auto& out = decoded->records[i];
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.record.project.str(), msg.project);
    EXPECT_EQ(out.record.collector.str(), msg.collector);
    EXPECT_EQ(int(out.record.dump_type), int(in.record.dump_type));
    EXPECT_EQ(out.record.dump_time, in.record.dump_time);
    EXPECT_EQ(int(out.record.status), int(in.record.status));
    EXPECT_EQ(int(out.record.position), int(in.record.position));
    EXPECT_EQ(out.record.timestamp, in.record.timestamp);
    ASSERT_TRUE(out.record.prefetched_elems.has_value());
    ASSERT_TRUE(in.record.prefetched_elems.has_value());
    ASSERT_EQ(out.record.prefetched_elems->size(),
              in.record.prefetched_elems->size());
    for (size_t e = 0; e < in.record.prefetched_elems->size(); ++e)
      ExpectElemEqual((*in.record.prefetched_elems)[e],
                      (*out.record.prefetched_elems)[e]);
  }
}

IpAddress RandomIp(std::mt19937& rng) {
  if (rng() % 2 == 0) {
    return IpAddress::V4(uint8_t(rng()), uint8_t(rng()), uint8_t(rng()),
                         uint8_t(rng()));
  }
  std::array<uint8_t, 16> bytes;
  for (auto& b : bytes) b = uint8_t(rng());
  return IpAddress::V6(bytes);
}

core::Elem RandomElem(std::mt19937& rng) {
  core::Elem e;
  e.type = core::ElemType(rng() % 4);
  e.time = Timestamp(1458000000 + rng() % 100000);
  e.peer_address = RandomIp(rng);
  e.peer_asn = uint32_t(rng());
  if (e.has_prefix()) {
    IpAddress addr = RandomIp(rng);
    e.prefix = Prefix(addr, int(rng() % size_t(addr.width() + 1)));
    e.next_hop = RandomIp(rng);
    // 1–3 segments, mixing sets and sequences, 4-byte ASNs included.
    size_t nseg = 1 + rng() % 3;
    for (size_t s = 0; s < nseg; ++s) {
      bgp::AsPathSegment seg;
      seg.type = rng() % 4 == 0 ? bgp::SegmentType::AsSet
                                : bgp::SegmentType::AsSequence;
      size_t nasn = 1 + rng() % 5;
      for (size_t a = 0; a < nasn; ++a) seg.asns.push_back(uint32_t(rng()));
      e.as_path.append_segment(std::move(seg));
    }
    size_t ncomm = rng() % 4;
    for (size_t c = 0; c < ncomm; ++c)
      e.communities.push_back(bgp::Community(uint32_t(rng())));
  } else {
    e.old_state = bgp::FsmState(rng() % 7);
    e.new_state = bgp::FsmState(rng() % 7);
  }
  return e;
}

TEST(RecordCodec, SyntheticPropertyRoundTrip) {
  std::mt19937 rng(20160331);  // seeded: failures replay exactly
  for (int round = 0; round < 50; ++round) {
    RecordBatchMessage msg;
    msg.project = round % 2 ? "routeviews" : "ris";
    msg.collector = "rrc" + std::to_string(round % 5);
    size_t nrec = rng() % 8;
    for (size_t i = 0; i < nrec; ++i) {
      PublishedRecord pr;
      pr.seq = uint64_t(rng()) << 20 | i;
      pr.record.project = msg.project;
      pr.record.collector = msg.collector;
      pr.record.dump_type = core::DumpType(rng() % 2);
      pr.record.dump_time = Timestamp(1458000000 + rng() % 7200);
      pr.record.status = core::RecordStatus(rng() % 3);
      pr.record.position = core::DumpPosition(rng() % 3);
      pr.record.timestamp = Timestamp(1458000000 + rng() % 7200);
      pr.record.prefetched_elems.emplace();
      size_t nelem = rng() % 6;
      for (size_t e = 0; e < nelem; ++e)
        pr.record.prefetched_elems->push_back(RandomElem(rng));
      msg.records.push_back(std::move(pr));
    }
    ExpectBatchRoundTrip(msg);
  }
}

TEST(RecordCodec, WatermarkRoundTripAndKindChecks) {
  RecordWatermarkMessage wm{123456789012345ull, false};
  auto decoded = DecodeRecordWatermark(EncodeRecordWatermark(wm));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->published_through, 123456789012345ull);
  EXPECT_FALSE(decoded->closed);
  wm.closed = true;
  EXPECT_TRUE(DecodeRecordWatermark(EncodeRecordWatermark(wm))->closed);

  // Kind bytes are disjoint: misrouted messages fail their kind check.
  Bytes batch_wire = EncodeRecordBatch({});
  EXPECT_FALSE(DecodeRecordWatermark(batch_wire).ok());
  EXPECT_FALSE(DecodeRecordBatch(EncodeRecordWatermark(wm)).ok());
  EXPECT_FALSE(DecodeRecordBatch({}).ok());
  // Truncated wire surfaces as an error, not UB.
  batch_wire.resize(batch_wire.size() / 2);
  EXPECT_FALSE(DecodeRecordBatch(batch_wire).ok());
}

TEST(RecordCodec, DecodeIntoReusesCapacity) {
  RecordBatchMessage msg;
  msg.project = "routeviews";
  msg.collector = "rv2";
  std::mt19937 rng(7);
  for (size_t i = 0; i < 4; ++i) {
    PublishedRecord pr;
    pr.seq = i;
    pr.record.prefetched_elems.emplace();
    pr.record.prefetched_elems->push_back(RandomElem(rng));
    msg.records.push_back(std::move(pr));
  }
  Bytes wire = EncodeRecordBatch(msg);
  RecordBatchMessage out;
  ASSERT_TRUE(DecodeRecordBatchInto(wire, out).ok());
  ASSERT_EQ(out.records.size(), 4u);
  // A second decode into the same message must replace, not append.
  ASSERT_TRUE(DecodeRecordBatchInto(wire, out).ok());
  EXPECT_EQ(out.records.size(), 4u);
  EXPECT_EQ(out.records[3].record.prefetched_elems->size(), 1u);
}

// Real records: a small generated corpus per ASN encoding, streamed
// with full extraction and re-batched through the codec. The corpus
// scenario mixes RIBs, updates, communities (rtbh windows) and session
// resets (FSM state changes), so the wire format sees live shapes, not
// just synthetic ones.
class CodecCorpusTest : public ::testing::TestWithParam<bgp::AsnEncoding> {};

class VectorDataInterface : public core::DataInterface {
 public:
  explicit VectorDataInterface(std::vector<DumpFileMeta> files)
      : files_(std::move(files)) {}
  core::DataBatch NextBatch(const core::FilterSet&) override {
    core::DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<DumpFileMeta> files_;
  bool served_ = false;
};

TEST_P(CodecCorpusTest, GeneratedCorpusRecordsRoundTrip) {
  namespace fs = std::filesystem;
  const bool four_byte = GetParam() == bgp::AsnEncoding::FourByte;
  std::string root =
      (fs::temp_directory_path() /
       ("bgps_codec_corpus_" + std::to_string(::getpid()) +
        (four_byte ? "_4b" : "_2b")))
          .string();

  sim::CorpusOptions options;
  options.scenario = "mixed";
  options.duration = 1200;
  options.flaps_per_hour = 600;
  options.asn_encoding = GetParam();
  options.seed = 20160331;
  ASSERT_TRUE(sim::GenerateCorpus(options, root).ok());
  broker::ArchiveIndex index(root);
  ASSERT_TRUE(index.Rescan().ok());

  core::BgpStream stream;
  VectorDataInterface di(index.files());
  stream.SetInterval(0, 4102444800);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());

  size_t records = 0, elems = 0;
  RecordBatchMessage batch;
  while (auto rec = stream.NextRecord()) {
    rec->prefetched_elems = stream.Elems(*rec);
    elems += rec->prefetched_elems->size();
    if (batch.records.empty()) {
      batch.project = rec->project.str();
      batch.collector = rec->collector.str();
    }
    if (batch.collector != rec->collector.str() ||
        batch.records.size() >= 32) {
      ExpectBatchRoundTrip(batch);
      batch.records.clear();
      batch.project = rec->project.str();
      batch.collector = rec->collector.str();
    }
    PublishedRecord pr;
    pr.seq = records++;
    pr.record = std::move(*rec);
    batch.records.push_back(std::move(pr));
  }
  ExpectBatchRoundTrip(batch);
  ASSERT_TRUE(stream.status().ok());
  EXPECT_GT(records, 100u);
  EXPECT_GT(elems, records);  // RIB records fan out to per-VP elems

  std::error_code ec;
  fs::remove_all(root, ec);
}

INSTANTIATE_TEST_SUITE_P(AsnEncodings, CodecCorpusTest,
                         ::testing::Values(bgp::AsnEncoding::TwoByte,
                                           bgp::AsnEncoding::FourByte),
                         [](const auto& info) {
                           return info.param == bgp::AsnEncoding::FourByte
                                      ? "FourByte"
                                      : "TwoByte";
                         });

}  // namespace
}  // namespace bgps::mq
