// Stress tier (ctest -L stress): the sharded RoutingTables pipeline over
// the full >= 1M-prefix synthetic RIB archive must produce output
// byte-identical to the sequential path — the acceptance bar for the
// sharded analytics tier at realistic global-table scale. The corpus is
// built lazily under the shared bench/stress cache dir (EnsureSyntheticRib),
// so repeated runs and the benches pay generation once per machine.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "core/executor.hpp"
#include "core/stream.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/rt.hpp"
#include "sim/corpus.hpp"

namespace bgps::corsaro {
namespace {

namespace fs = std::filesystem;

// Shared with bench/bench_rt_sharded.cpp (same options => same marker =>
// one generation serves both).
std::string MegaRibRoot() {
  return (fs::temp_directory_path() / "bgps_mega_rib_corpus").string();
}

sim::SyntheticRibOptions MegaRibOptions() {
  sim::SyntheticRibOptions options;  // 1M prefixes, 4 VPs, 4 windows
  return options;
}

// Streaming digest of everything the plugin emits: at this scale we
// fingerprint with an order-sensitive FNV-1a hash instead of buffering
// millions of diff cells per run.
struct Digest {
  uint64_t hash = 1469598103934665603ull;
  size_t diff_cells = 0;
  size_t bins = 0;

  void Mix(uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (b * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  void MixStr(const std::string& s) {
    for (unsigned char c : s) {
      hash ^= c;
      hash *= 1099511628211ull;
    }
  }
  void MixCell(const DiffCell& d) {
    MixStr(d.vp.collector);
    Mix(d.vp.peer);
    MixStr(d.prefix.ToString());
    Mix(uint64_t(d.cell.last_modified));
    Mix(d.cell.announced ? 1 : 0);
    for (const auto& seg : d.cell.as_path.segments()) {
      for (bgp::Asn asn : seg.asns) Mix(asn);
    }
  }

  bool operator==(const Digest&) const = default;
};

struct RunResult {
  Digest digest;
  size_t rib_compared = 0;
  size_t rib_mismatches = 0;
  size_t vps = 0;
  uint64_t table_hash = 0;
  std::vector<RtShardStats> shard_stats;
};

RunResult RunMega(RoutingTables::Options options, Timestamp start,
                  Timestamp end) {
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(MegaRibRoot(), bopt);
  core::BrokerDataInterface di(&broker);

  core::BgpStream stream;
  stream.SetInterval(start, end);
  stream.SetDataInterface(&di);
  EXPECT_TRUE(stream.Start().ok());

  BgpCorsaro engine(&stream, 900);
  auto rt = std::make_unique<RoutingTables>(options);
  RoutingTables* rtp = rt.get();
  RunResult out;
  rtp->set_diff_callback(
      [&out](Timestamp bin_start, const std::vector<DiffCell>& diffs) {
        out.digest.Mix(uint64_t(bin_start));
        for (const auto& d : diffs) out.digest.MixCell(d);
        out.digest.diff_cells += diffs.size();
        ++out.digest.bins;
      });
  engine.AddPlugin(std::move(rt));
  engine.Run();

  out.rib_compared = rtp->rib_compared_prefixes();
  out.rib_mismatches = rtp->rib_mismatches();
  auto vps = rtp->vps();
  out.vps = vps.size();
  Digest tables;
  for (const auto& vp : vps) {
    tables.MixStr(vp.collector);
    tables.Mix(vp.peer);
    for (const auto& [prefix, cell] : rtp->table(vp)) {
      tables.MixCell(DiffCell{vp, prefix, cell});
    }
  }
  out.table_hash = tables.hash;
  out.shard_stats = rtp->shard_stats();
  return out;
}

TEST(RtMegaStress, MillionPrefixShardedOutputIsByteIdentical) {
  auto stats = sim::EnsureSyntheticRib(MegaRibOptions(), MegaRibRoot());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(stats->rib_entries, size_t(2'000'000));  // initial + final RIB

  RunResult seq = RunMega({}, stats->start, stats->end);
  ASSERT_GT(seq.digest.bins, 0u);
  ASSERT_GT(seq.digest.diff_cells, 0u);
  ASSERT_GT(seq.rib_compared, 0u);
  EXPECT_EQ(seq.rib_mismatches, 0u);
  ASSERT_EQ(seq.vps, 4u);

  core::Executor executor({.threads = 4});
  RoutingTables::Options opt;
  opt.shards = 4;
  opt.executor = &executor;
  RunResult sharded = RunMega(opt, stats->start, stats->end);

  EXPECT_EQ(sharded.digest, seq.digest) << "diff stream diverged at scale";
  EXPECT_EQ(sharded.table_hash, seq.table_hash);
  EXPECT_EQ(sharded.rib_compared, seq.rib_compared);
  EXPECT_EQ(sharded.rib_mismatches, seq.rib_mismatches);
  EXPECT_EQ(sharded.vps, seq.vps);

  // The elems really were applied across shards.
  ASSERT_EQ(sharded.shard_stats.size(), 4u);
  size_t applied = 0, populated = 0;
  for (const auto& s : sharded.shard_stats) {
    applied += s.applied_elems;
    populated += (s.vps > 0);
  }
  size_t seq_applied = 0;
  for (const auto& s : seq.shard_stats) seq_applied += s.applied_elems;
  EXPECT_EQ(applied, seq_applied);
  EXPECT_GE(populated, 2u);
}

}  // namespace
}  // namespace bgps::corsaro
