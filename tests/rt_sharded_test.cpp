// Sharded RoutingTables must be observably identical to the sequential
// path at any shard count: the diff stream, snapshots, bin stats,
// accuracy counters, VP set, FSM states and reconstructed tables. These
// tests pin that equivalence over the simulated archive, a generated
// mixed-scenario corpus, and hand-built corrupt-record sequences, plus
// the per-collector VP index regression (RIB boundary events must visit
// only their own collector's VPs).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "broker/broker.hpp"
#include "core/executor.hpp"
#include "core/stream.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/rt.hpp"
#include "sim/corpus.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::corsaro {
namespace {

namespace fs = std::filesystem;

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

// Everything a consumer can observe from a RoutingTables run.
struct Fingerprint {
  std::vector<std::pair<Timestamp, std::vector<DiffCell>>> diff_events;
  std::vector<std::tuple<Timestamp, VpKey, std::map<Prefix, RtCell>>>
      snapshots;
  std::vector<RtBinStats> bins;
  size_t rib_compared = 0;
  size_t rib_mismatches = 0;
  std::vector<VpKey> vps;
  std::map<VpKey, VpState> states;
  std::map<VpKey, std::map<Prefix, RtCell>> tables;

  bool operator==(const Fingerprint&) const = default;
};

void AttachObservers(RoutingTables& rt, Fingerprint& fp) {
  rt.set_diff_callback(
      [&fp](Timestamp bin_start, const std::vector<DiffCell>& diffs) {
        fp.diff_events.emplace_back(bin_start, diffs);
      });
  rt.set_snapshot_callback([&fp](Timestamp bin_start, const VpKey& vp,
                                 const std::map<Prefix, RtCell>& table) {
    fp.snapshots.emplace_back(bin_start, vp, table);
  });
}

void Finalize(RoutingTables& rt, Fingerprint& fp) {
  fp.bins = rt.bin_stats();
  fp.rib_compared = rt.rib_compared_prefixes();
  fp.rib_mismatches = rt.rib_mismatches();
  fp.vps = rt.vps();
  for (const auto& vp : fp.vps) {
    fp.states[vp] = rt.state(vp);
    fp.tables[vp] = rt.table(vp);
  }
}

// Field-by-field comparison so a divergence names the observable that
// broke instead of "fingerprints differ".
void ExpectSameFingerprint(const Fingerprint& seq, const Fingerprint& got,
                           const std::string& label) {
  EXPECT_EQ(seq.diff_events == got.diff_events, true)
      << label << ": diff stream diverged";
  EXPECT_EQ(seq.snapshots == got.snapshots, true)
      << label << ": snapshot stream diverged";
  EXPECT_EQ(seq.bins == got.bins, true) << label << ": bin stats diverged";
  EXPECT_EQ(seq.rib_compared, got.rib_compared) << label;
  EXPECT_EQ(seq.rib_mismatches, got.rib_mismatches) << label;
  EXPECT_EQ(seq.vps == got.vps, true) << label << ": VP sets diverged";
  EXPECT_EQ(seq.states == got.states, true) << label << ": states diverged";
  EXPECT_EQ(seq.tables == got.tables, true) << label << ": tables diverged";
  EXPECT_EQ(seq == got, true) << label;
}

// Runs the RT plugin over an on-disk archive and captures its fingerprint.
Fingerprint RunOverArchive(const std::string& root, Timestamp start,
                           Timestamp end, RoutingTables::Options options,
                           size_t* applied_elems_sum = nullptr,
                           std::vector<RtShardStats>* shard_stats = nullptr) {
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(root, bopt);
  core::BrokerDataInterface di(&broker);

  core::BgpStream stream;
  stream.SetInterval(start, end);
  stream.SetDataInterface(&di);
  EXPECT_TRUE(stream.Start().ok());

  BgpCorsaro engine(&stream, 300);
  auto rt = std::make_unique<RoutingTables>(options);
  RoutingTables* rtp = rt.get();
  Fingerprint fp;
  AttachObservers(*rtp, fp);
  engine.AddPlugin(std::move(rt));
  engine.Run();
  Finalize(*rtp, fp);
  if (applied_elems_sum || shard_stats) {
    auto stats = rtp->shard_stats();
    if (shard_stats) *shard_stats = stats;
    if (applied_elems_sum) {
      *applied_elems_sum = 0;
      for (const auto& s : stats) *applied_elems_sum += s.applied_elems;
    }
  }
  return fp;
}

TEST(RtSharded, FixtureArchiveFingerprintIsShardCountInvariant) {
  const auto& a = testutil::GetSmallArchive();
  core::Executor executor({.threads = 3});

  RoutingTables::Options seq_opt;
  seq_opt.snapshot_every_bins = 2;
  size_t seq_applied = 0;
  Fingerprint seq =
      RunOverArchive(a.root, a.start, a.end, seq_opt, &seq_applied);
  ASSERT_FALSE(seq.vps.empty());
  ASSERT_FALSE(seq.diff_events.empty());
  ASSERT_FALSE(seq.snapshots.empty());
  EXPECT_GT(seq_applied, 0u);

  for (size_t shards : {size_t(1), size_t(2), size_t(3), size_t(8)}) {
    RoutingTables::Options opt;
    opt.snapshot_every_bins = 2;
    opt.shards = shards;
    opt.executor = &executor;
    opt.batch_elems = 64;  // small batches: exercise the flush path hard
    size_t applied = 0;
    std::vector<RtShardStats> stats;
    Fingerprint got =
        RunOverArchive(a.root, a.start, a.end, opt, &applied, &stats);
    ExpectSameFingerprint(seq, got, "shards=" + std::to_string(shards));
    // Work conservation: the same elems were applied, just elsewhere.
    EXPECT_EQ(applied, seq_applied) << "shards=" << shards;
    ASSERT_EQ(stats.size(), shards);
    size_t vps_total = 0;
    for (const auto& s : stats) vps_total += s.vps;
    EXPECT_EQ(vps_total, seq.vps.size());
    if (shards >= 2) {
      // 10 VPs over 2+ shards: the FNV split must actually spread them.
      size_t populated = 0;
      for (const auto& s : stats) populated += (s.vps > 0);
      EXPECT_GE(populated, 2u) << "shards=" << shards;
    }
  }
}

TEST(RtSharded, MixedScenarioCorpusFingerprintMatches) {
  // A nastier stream than the fixture: hijacks, leaks, session resets
  // and blackholes over shared churn, two collectors.
  std::string root = (fs::temp_directory_path() /
                      ("bgps_rt_sharded_mixed_" + std::to_string(::getpid())))
                         .string();
  sim::CorpusOptions copt;
  copt.scenario = "mixed";
  copt.duration = 3600;
  copt.flaps_per_hour = 1200;
  copt.seed = 21;
  auto stats = sim::GenerateCorpus(copt, root);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  RoutingTables::Options seq_opt;
  seq_opt.snapshot_every_bins = 3;
  Fingerprint seq = RunOverArchive(root, stats->start, stats->end, seq_opt);
  ASSERT_FALSE(seq.diff_events.empty());

  core::Executor executor({.threads = 3});
  for (size_t shards : {size_t(2), size_t(5)}) {
    RoutingTables::Options opt;
    opt.snapshot_every_bins = 3;
    opt.shards = shards;
    opt.executor = &executor;
    opt.batch_elems = 128;
    Fingerprint got = RunOverArchive(root, stats->start, stats->end, opt);
    ExpectSameFingerprint(seq, got,
                          "mixed corpus shards=" + std::to_string(shards));
  }
  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(RtSharded, SyntheticRibCorpusExercisesCompareAndMatches) {
  // A scaled-down cut of the million-prefix synthetic archive: initial
  // RIB, churn windows, and a final RIB — so the §6.2.1 compare/merge
  // path runs (rib_compared > 0) and must agree at every shard count.
  std::string root =
      (fs::temp_directory_path() /
       ("bgps_rt_sharded_synth_" + std::to_string(::getpid())))
          .string();
  sim::SyntheticRibOptions sopt;
  sopt.prefixes = 5000;
  sopt.vps = 5;
  sopt.update_windows = 2;
  sopt.churn_fraction = 0.05;
  sopt.final_rib = true;
  sopt.seed = 3;
  auto stats = sim::GenerateSyntheticRib(sopt, root);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GT(stats->rib_entries, sopt.prefixes);  // initial + final dumps
  ASSERT_GT(stats->update_messages, 0u);

  RoutingTables::Options seq_opt;
  Fingerprint seq = RunOverArchive(root, stats->start, stats->end, seq_opt);
  ASSERT_EQ(seq.vps.size(), size_t(sopt.vps));
  ASSERT_GT(seq.rib_compared, 0u);
  EXPECT_EQ(seq.rib_mismatches, 0u);  // nothing corrupt in this corpus

  core::Executor executor({.threads = 3});
  for (size_t shards : {size_t(2), size_t(4)}) {
    RoutingTables::Options opt;
    opt.shards = shards;
    opt.executor = &executor;
    Fingerprint got = RunOverArchive(root, stats->start, stats->end, opt);
    ExpectSameFingerprint(seq, got,
                          "synthetic shards=" + std::to_string(shards));
  }
  std::error_code ec;
  fs::remove_all(root, ec);
}

// --- direct-feed equivalence: corrupt records and FSM events ---

struct Feeder {
  explicit Feeder(RoutingTables& rt) : rt(&rt) {}
  void Updates(const std::string& collector, Timestamp t,
               const std::vector<core::Elem>& elems) {
    core::Record rec;
    rec.project = "ris";
    rec.collector = collector;
    rec.dump_type = core::DumpType::Updates;
    rec.timestamp = t;
    RecordContext ctx{rec, elems, {}};
    rt->OnRecord(ctx);
  }
  void CorruptUpdates(const std::string& collector) {
    core::Record rec;
    rec.collector = collector;
    rec.dump_type = core::DumpType::Updates;
    rec.status = core::RecordStatus::CorruptedRecord;
    std::vector<core::Elem> none;
    RecordContext ctx{rec, none, {}};
    rt->OnRecord(ctx);
  }
  void Rib(const std::string& collector, Timestamp t,
           core::DumpPosition position, const std::vector<core::Elem>& elems,
           core::RecordStatus status = core::RecordStatus::Valid) {
    core::Record rec;
    rec.collector = collector;
    rec.dump_type = core::DumpType::Rib;
    rec.timestamp = t;
    rec.position = position;
    rec.status = status;
    RecordContext ctx{rec, elems, {}};
    rt->OnRecord(ctx);
  }
  RoutingTables* rt;
};

core::Elem Ann(Timestamp t, bgp::Asn peer, const Prefix& p,
               std::initializer_list<bgp::Asn> path) {
  core::Elem e;
  e.type = core::ElemType::Announcement;
  e.time = t;
  e.peer_asn = peer;
  e.prefix = p;
  e.as_path = bgp::AsPath::Sequence(path);
  return e;
}

core::Elem Wd(Timestamp t, bgp::Asn peer, const Prefix& p) {
  core::Elem e;
  e.type = core::ElemType::Withdrawal;
  e.time = t;
  e.peer_asn = peer;
  e.prefix = p;
  return e;
}

core::Elem RibE(Timestamp t, bgp::Asn peer, const Prefix& p,
                std::initializer_list<bgp::Asn> path) {
  core::Elem e;
  e.type = core::ElemType::RibEntry;
  e.time = t;
  e.peer_asn = peer;
  e.prefix = p;
  e.as_path = bgp::AsPath::Sequence(path);
  return e;
}

// Drives one scripted sequence exercising E1 (corrupt RIB), E2 (stale
// RIB record), E3 (corrupt updates) and plain churn over three
// collectors, with bin boundaries interleaved.
Fingerprint RunScripted(RoutingTables::Options options) {
  RoutingTables rt(options);
  Fingerprint fp;
  AttachObservers(rt, fp);
  Feeder f(rt);

  const std::vector<std::string> collectors = {"rrc00", "rrc01", "rv2"};
  // Seed 6 VPs per collector with announcements.
  for (size_t c = 0; c < collectors.size(); ++c) {
    for (bgp::Asn peer = 65000; peer < 65006; ++peer) {
      for (int i = 0; i < 4; ++i) {
        auto p = P(std::to_string(10 + i) + "." + std::to_string(c) + "." +
                   std::to_string(peer - 65000) + ".0/24");
        f.Updates(collectors[c], 100 + i,
                  {Ann(100 + i, peer, p, {peer, 4200000000u + i})});
      }
    }
  }
  rt.OnBinEnd(0, 300);

  // A clean RIB on rrc00; a corrupt RIB mid-dump on rrc01 (E1); corrupt
  // updates on rv2 (E3).
  f.Rib("rrc00", 400, core::DumpPosition::Start,
        {RibE(400, 65000, P("10.0.0.0/24"), {65000, 4200000000u}),
         RibE(400, 65001, P("10.0.1.0/24"), {65001, 99})});
  f.Rib("rrc00", 401, core::DumpPosition::End, {});
  f.Rib("rrc01", 400, core::DumpPosition::Start,
        {RibE(400, 65002, P("10.1.2.0/24"), {65002, 7})});
  f.Rib("rrc01", 401, core::DumpPosition::Middle, {},
        core::RecordStatus::CorruptedRecord);
  f.CorruptUpdates("rv2");
  rt.OnBinEnd(300, 600);

  // Churn after the events: withdrawals, re-announcements, an E2-style
  // stale RIB record (timestamp below the update's last_modified).
  f.Updates("rrc00", 700, {Wd(700, 65000, P("10.0.0.0/24"))});
  f.Updates("rrc00", 701,
            {Ann(701, 65001, P("10.0.1.0/24"), {65001, 100})});
  f.Rib("rrc00", 650, core::DumpPosition::Start,
        {RibE(650, 65001, P("10.0.1.0/24"), {65001, 99})});
  f.Rib("rrc00", 651, core::DumpPosition::End, {});
  f.Updates("rv2", 710, {Ann(710, 65003, P("12.2.3.0/24"), {65003, 42})});
  rt.OnBinEnd(600, 900);
  rt.OnFinish();

  Finalize(rt, fp);
  return fp;
}

TEST(RtSharded, CorruptRecordEventsMatchSequentialExactly) {
  Fingerprint seq = RunScripted({});
  ASSERT_FALSE(seq.vps.empty());
  ASSERT_EQ(seq.diff_events.size(), 3u);

  core::Executor executor({.threads = 3});
  for (size_t shards : {size_t(2), size_t(4), size_t(7)}) {
    RoutingTables::Options opt;
    opt.shards = shards;
    opt.executor = &executor;
    opt.batch_elems = 3;  // force frequent flushes around broadcasts
    Fingerprint got = RunScripted(opt);
    ExpectSameFingerprint(seq, got,
                          "scripted shards=" + std::to_string(shards));
  }
}

// --- satellite 1 regression: per-collector VP index ---
// A RIB boundary or corrupt-updates event on one collector must visit
// only that collector's VPs, however many other collectors exist.

TEST(RtSharded, RibBoundaryEventsVisitOnlyTheOwnCollectorsVps) {
  for (size_t shards : {size_t(1), size_t(4)}) {
    core::Executor executor({.threads = 2});
    RoutingTables::Options opt;
    if (shards > 1) {
      opt.shards = shards;
      opt.executor = &executor;
      opt.batch_elems = 1;
    }
    RoutingTables rt(opt);
    Feeder f(rt);

    // 20 collectors x 3 VPs each = 60 VPs total.
    constexpr int kCollectors = 20;
    constexpr int kVpsPer = 3;
    for (int c = 0; c < kCollectors; ++c) {
      std::string name = "coll" + std::to_string(c);
      for (int v = 0; v < kVpsPer; ++v) {
        bgp::Asn peer = 65000 + v;
        f.Updates(name, 100,
                  {Ann(100, peer, P("10.0." + std::to_string(v) + ".0/24"),
                       {peer, 1})});
      }
    }
    ASSERT_EQ(rt.vps().size(), size_t(kCollectors) * kVpsPer);
    size_t before = rt.rib_boundary_visits();

    // One collector's RIB start+end: 2 events x 3 VPs, not x 60.
    f.Rib("coll7", 200, core::DumpPosition::Start,
          {RibE(200, 65000, P("10.0.0.0/24"), {65000, 1})});
    f.Rib("coll7", 201, core::DumpPosition::End, {});
    size_t after_rib = rt.rib_boundary_visits();
    EXPECT_EQ(after_rib - before, size_t(2 * kVpsPer)) << "shards=" << shards;

    // A corrupt-updates event on another collector: 1 event x 3 VPs.
    f.CorruptUpdates("coll12");
    EXPECT_EQ(rt.rib_boundary_visits() - after_rib, size_t(kVpsPer))
        << "shards=" << shards;

    // An aborted RIB (E1) is also per-collector.
    f.Rib("coll3", 300, core::DumpPosition::Start, {});
    size_t before_abort = rt.rib_boundary_visits();
    f.Rib("coll3", 301, core::DumpPosition::Middle, {},
          core::RecordStatus::CorruptedRecord);
    EXPECT_EQ(rt.rib_boundary_visits() - before_abort, size_t(kVpsPer))
        << "shards=" << shards;
  }
}

TEST(RtSharded, ShardsWithoutExecutorApplyInline) {
  // shards > 1 but no executor: documented to fall back to inline apply
  // and still produce sequential output.
  Fingerprint seq = RunScripted({});
  RoutingTables::Options opt;
  opt.shards = 4;
  opt.executor = nullptr;
  Fingerprint got = RunScripted(opt);
  ExpectSameFingerprint(seq, got, "shards=4 executor=null");
}

}  // namespace
}  // namespace bgps::corsaro
