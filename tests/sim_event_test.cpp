// Discrete-event core (sim/event.hpp) and generator (sim/generators.hpp)
// tests: queue ordering + tie-break determinism, composition by
// timestamp, seeded replay, and the world-visible pattern each scripted
// generator produces.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "broker/archive.hpp"
#include "mrt/file.hpp"
#include "sim/driver.hpp"
#include "sim/scenario.hpp"

namespace bgps::sim {
namespace {

namespace fs = std::filesystem;

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

TopologyConfig SmallConfig() {
  TopologyConfig cfg;
  cfg.num_tier1 = 3;
  cfg.num_transit = 10;
  cfg.num_stub = 30;
  cfg.seed = 11;
  return cfg;
}

std::string TempRoot(const std::string& tag) {
  return (fs::temp_directory_path() /
          (tag + "_" + std::to_string(::getpid()))).string();
}

TEST(EventQueue, PopsInTimestampOrder) {
  EventQueue q;
  q.Push(SimEvent::WithdrawAt(300, P("10.0.0.0/24")));
  q.Push(SimEvent::WithdrawAt(100, P("10.0.1.0/24")));
  q.Push(SimEvent::WithdrawAt(200, P("10.0.2.0/24")));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time(), 100);
  EXPECT_EQ(q.Pop().time, 100);
  EXPECT_EQ(q.Pop().time, 200);
  EXPECT_EQ(q.Pop().time, 300);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameTimestampPopsInPushOrder) {
  // The tie-break is the stable-sort contract the old vector timeline
  // had: events sharing a timestamp fire in scheduling order.
  EventQueue q;
  for (int i = 0; i < 8; ++i)
    q.Push(SimEvent::WithdrawAt(500, P("10.1." + std::to_string(i) + ".0/24")));
  for (int i = 0; i < 8; ++i) {
    SimEvent e = q.Pop();
    EXPECT_EQ(e.prefix, P("10.1." + std::to_string(i) + ".0/24"))
        << "tie-broken out of push order at " << i;
  }
}

TEST(EventQueue, PopIsDestructiveAcrossSegments) {
  // Segment-wise draining (what Run() does per dump boundary) must never
  // re-fire an event in a later segment.
  EventQueue q;
  q.Push(SimEvent::WithdrawAt(100, P("10.0.0.0/24")));
  q.Push(SimEvent::WithdrawAt(200, P("10.0.1.0/24")));

  size_t fired_first = 0;
  while (!q.empty() && q.next_time() <= 150) {
    q.Pop();
    ++fired_first;
  }
  EXPECT_EQ(fired_first, 1u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 200);
}

TEST(Generators, ComposeByTimestamp) {
  // Two oscillators with offset schedules must interleave in the queue
  // purely by timestamp, regardless of registration order.
  Topology topo = Topology::Generate(SmallConfig());
  std::mt19937_64 rng(7);
  EventQueue q;

  FlapOscillationGenerator a;
  a.prefix = P("10.2.0.0/24");
  a.origin = 65001;
  a.start = 1000;
  a.last = 3000;
  a.period = 1000;  // withdraws at 1000, 2000
  a.downtime = 100;

  FlapOscillationGenerator b;
  b.prefix = P("10.3.0.0/24");
  b.origin = 65002;
  b.start = 1500;
  b.last = 2600;
  b.period = 1000;  // withdraws at 1500, 2500
  b.downtime = 100;

  a.Generate(topo, rng, q);
  b.Generate(topo, rng, q);

  std::vector<Timestamp> times;
  std::vector<Prefix> prefixes;
  while (!q.empty()) {
    SimEvent e = q.Pop();
    times.push_back(e.time);
    prefixes.push_back(e.prefix);
  }
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // a@1000, a@1100(up), b@1500, b@1600(up), a@2000, a@2100, b@2500, b@2600up?
  ASSERT_GE(times.size(), 6u);
  EXPECT_EQ(times[0], 1000);
  EXPECT_EQ(prefixes[0], a.prefix);
  EXPECT_EQ(times[2], 1500);
  EXPECT_EQ(prefixes[2], b.prefix);
  EXPECT_EQ(times[4], 2000);
  EXPECT_EQ(prefixes[4], a.prefix);
}

TEST(Generators, SeededReplayIsIdentical) {
  Topology topo = Topology::Generate(SmallConfig());
  FlapNoiseGenerator gen;
  gen.start = 1451606400;
  gen.end = gen.start + 3600;
  gen.flaps_per_hour = 500;

  auto expand = [&](uint64_t seed) {
    std::mt19937_64 rng(seed);
    EventQueue q;
    gen.Generate(topo, rng, q);
    std::vector<std::tuple<Timestamp, int, std::string>> seq;
    while (!q.empty()) {
      SimEvent e = q.Pop();
      seq.emplace_back(e.time, int(e.kind), e.prefix.ToString());
    }
    return seq;
  };

  auto a = expand(99), b = expand(99), c = expand(100);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed must replay the same event sequence";
  EXPECT_NE(a, c) << "different seed must not";
}

TEST(Generators, FlapNoiseRespectsAvoidSet) {
  Topology topo = Topology::Generate(SmallConfig());
  // Avoid everything except one prefix: all flaps must hit that prefix.
  std::set<Prefix> avoid;
  for (const auto& [asn, prefix] : topo.all_origins()) avoid.insert(prefix);
  auto keep = *avoid.begin();
  avoid.erase(keep);

  FlapNoiseGenerator gen;
  gen.start = 0;
  gen.end = 3600;
  gen.flaps_per_hour = 200;
  gen.avoid = avoid;
  std::mt19937_64 rng(3);
  EventQueue q;
  gen.Generate(topo, rng, q);
  ASSERT_FALSE(q.empty());
  while (!q.empty()) EXPECT_EQ(q.Pop().prefix, keep);
}

// ---------------------------------------------------------------------
// World-visible patterns, checked by running the driver in segments and
// inspecting origin sets between them.

struct ScriptedWorld : ::testing::Test {
  void SetUp() override {
    root = TempRoot("sim_event");
    fs::remove_all(root);
    driver = std::make_unique<SimDriver>(Topology::Generate(SmallConfig()),
                                         root, 17);
    driver->world().AnnounceAll();
  }
  void TearDown() override { fs::remove_all(root); }

  std::string root;
  std::unique_ptr<SimDriver> driver;
};

TEST_F(ScriptedWorld, HijackIsMoasDuringWindowOnly) {
  const Topology& topo = driver->topology();
  auto [victim, prefix] = topo.all_origins().front();
  Asn attacker = 0;
  for (const auto& [asn, p] : topo.all_origins()) {
    if (asn != victim) { attacker = asn; break; }
  }
  ASSERT_NE(attacker, 0u);

  HijackGenerator gen;
  gen.victim = victim;
  gen.attacker = attacker;
  gen.prefixes = {prefix};
  gen.windows.emplace_back(1000, 2000);
  driver->AddGenerator(gen);
  EXPECT_EQ(driver->pending_events(), 2u);

  ASSERT_TRUE(driver->Run(0, 1500).ok());
  auto during = driver->world().origins(prefix);
  ASSERT_EQ(during.size(), 2u) << "expected a MOAS during the window";
  EXPECT_EQ(during[0].asn, victim);
  EXPECT_EQ(during[1].asn, attacker);

  ASSERT_TRUE(driver->Run(1500, 2500).ok());
  auto after = driver->world().origins(prefix);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].asn, victim);
  EXPECT_EQ(driver->pending_events(), 0u);
}

TEST_F(ScriptedWorld, RouteLeakReoriginatesAndRestores) {
  const Topology& topo = driver->topology();
  Asn leaker = 0;
  for (Asn asn : topo.asns_sorted()) {
    if (topo.node(asn).tier == AsTier::Transit) { leaker = asn; break; }
  }
  ASSERT_NE(leaker, 0u);

  RouteLeakGenerator gen;
  gen.leaker = leaker;
  gen.start = 1000;
  gen.end = 2000;
  gen.max_prefixes = 10;
  driver->AddGenerator(gen);
  ASSERT_GT(driver->pending_events(), 0u);

  ASSERT_TRUE(driver->Run(0, 1500).ok());
  size_t leaked = 0;
  for (const auto& [prefix, origins] : driver->world().announced()) {
    bool has_leaker = false, has_owner = false;
    for (const auto& o : origins) {
      if (o.asn == leaker) has_leaker = true;
      else has_owner = true;
    }
    if (has_leaker && has_owner) ++leaked;
  }
  EXPECT_GT(leaked, 0u) << "mid-leak, foreign prefixes must show the leaker";
  EXPECT_LE(leaked, gen.max_prefixes);

  ASSERT_TRUE(driver->Run(1500, 2500).ok());
  const AsNode& lnode = topo.node(leaker);
  std::set<Prefix> own(lnode.prefixes.begin(), lnode.prefixes.end());
  own.insert(lnode.prefixes_v6.begin(), lnode.prefixes_v6.end());
  for (const auto& [prefix, origins] : driver->world().announced()) {
    if (own.count(prefix)) continue;
    for (const auto& o : origins)
      EXPECT_NE(o.asn, leaker)
          << prefix.ToString() << " still leaked after the window";
  }
}

TEST_F(ScriptedWorld, OutageWithdrawsConeThenRestores) {
  const Topology& topo = driver->topology();
  CountryOutageGenerator gen;
  for (Asn asn : topo.asns_sorted()) {
    if (topo.node(asn).tier == AsTier::Transit) gen.isps.push_back(asn);
    if (gen.isps.size() == 2) break;
  }
  gen.windows.emplace_back(1000, 2000);
  std::set<Prefix> cone = ConePrefixes(topo, gen.isps);
  ASSERT_FALSE(cone.empty());
  driver->AddGenerator(gen);

  ASSERT_TRUE(driver->Run(0, 1500).ok());
  for (const auto& p : cone)
    EXPECT_TRUE(driver->world().origins(p).empty())
        << p.ToString() << " still announced mid-outage";

  ASSERT_TRUE(driver->Run(1500, 2500).ok());
  for (const auto& p : cone)
    EXPECT_FALSE(driver->world().origins(p).empty())
        << p.ToString() << " not restored after the outage";
}

TEST_F(ScriptedWorld, RtbhAnnouncesTaggedHostRouteDuringWindow) {
  const Topology& topo = driver->topology();
  auto [victim, prefix] = topo.all_origins().front();
  RtbhGenerator gen;
  gen.victim = victim;
  gen.target = Prefix(prefix.address(), 32);
  gen.tags.push_back(bgp::Community(65000, kBlackholeValue));
  gen.start = 1000;
  gen.end = 2000;
  driver->AddGenerator(gen);

  ASSERT_TRUE(driver->Run(0, 1500).ok());
  auto during = driver->world().origins(gen.target);
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0].asn, victim);
  ASSERT_EQ(during[0].communities.size(), 1u);
  EXPECT_EQ(during[0].communities[0], gen.tags[0]);

  ASSERT_TRUE(driver->Run(1500, 2500).ok());
  EXPECT_TRUE(driver->world().origins(gen.target).empty());
}

TEST_F(ScriptedWorld, SessionResetsEmitStateMessagesOnlyWhereDumped) {
  CollectorConfig ris;
  ris.project = "ris";
  ris.name = "rrc00";
  ris.rib_period = 1800;
  ris.update_period = 300;
  ris.state_messages = true;
  ris.publish_delay = 0;
  ris.vps = PickVps(driver->topology(), 3, 0.0, 42);
  driver->AddCollector(ris);

  CollectorConfig rv = ris;
  rv.project = "routeviews";
  rv.name = "route-views2";
  rv.state_messages = false;  // RouteViews-style: no FSM records
  driver->AddCollector(rv);

  SessionResetGenerator gen;
  gen.vps = driver->all_vps();
  gen.start = 1800000000 + 60;
  gen.end = 1800000000 + 1500;
  gen.resets = 8;
  gen.silent_fraction = 0.0;  // every reset is loud for this test
  driver->AddGenerator(gen);
  ASSERT_GT(driver->pending_events(), 0u);

  ASSERT_TRUE(driver->Run(1800000000, 1800000000 + 1800).ok());

  broker::ArchiveIndex index(root);
  ASSERT_TRUE(index.Rescan().ok());
  size_t ris_states = 0, rv_states = 0;
  for (const auto& f : index.files()) {
    auto scan = mrt::ScanFile(f.path);
    ASSERT_TRUE(scan.ok()) << f.path;
    for (const auto& msg : scan->messages) {
      if (!msg.is_state_change()) continue;
      (f.collector == "rrc00" ? ris_states : rv_states)++;
    }
  }
  EXPECT_GT(ris_states, 0u) << "RIS collector must dump FSM transitions";
  EXPECT_EQ(rv_states, 0u) << "RouteViews-style collector must not";
}

}  // namespace
}  // namespace bgps::sim
