// Shared test fixture: builds a small simulated archive once per process
// and exposes its location + configuration to tests.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>

#include "sim/scenario.hpp"

namespace bgps::testutil {

struct SmallArchive {
  std::string root;
  std::unique_ptr<sim::SimDriver> driver;
  Timestamp start = 0;
  Timestamp end = 0;
};

// One hour of data: 1 RouteViews-style + 1 RIS-style collector, a small
// topology, light flap noise. Deterministic (fixed seeds).
inline SmallArchive& GetSmallArchive() {
  static SmallArchive* archive = [] {
    auto* a = new SmallArchive();
    a->root = (std::filesystem::temp_directory_path() /
               ("bgps_test_archive_" + std::to_string(::getpid())))
                  .string();
    std::filesystem::remove_all(a->root);

    sim::StandardSimOptions options;
    options.topo.num_tier1 = 4;
    options.topo.num_transit = 12;
    options.topo.num_stub = 40;
    options.topo.seed = 99;
    options.rv_collectors = 1;
    options.ris_collectors = 1;
    options.vps_per_collector = 5;
    options.publish_delay = 0;
    options.seed = 5;
    a->driver = sim::MakeStandardSim(options, a->root);

    a->start = TimestampFromYmdHms(2016, 3, 1, 0, 0, 0);
    a->end = a->start + 3600;
    a->driver->AddFlapNoise(a->start + 60, a->end - 60, 120.0, 90);
    Status st = a->driver->Run(a->start, a->end);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return a;
  }();
  return *archive;
}

}  // namespace bgps::testutil
