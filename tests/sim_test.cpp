#include <gtest/gtest.h>

#include <filesystem>

#include "broker/archive.hpp"
#include "mrt/file.hpp"
#include "sim/scenario.hpp"

namespace bgps::sim {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

TopologyConfig SmallConfig() {
  TopologyConfig cfg;
  cfg.num_tier1 = 3;
  cfg.num_transit = 10;
  cfg.num_stub = 30;
  cfg.seed = 11;
  return cfg;
}

TEST(Topology, GenerationInvariants) {
  Topology topo = Topology::Generate(SmallConfig());
  EXPECT_EQ(topo.nodes().size(), 43u);

  size_t t1 = 0, transit = 0, stub = 0;
  for (const auto& [asn, node] : topo.nodes()) {
    switch (node.tier) {
      case AsTier::Tier1: ++t1; break;
      case AsTier::Transit: ++transit; break;
      case AsTier::Stub: ++stub; break;
    }
    // Every non-tier1 AS has at least one provider (connected graph).
    if (node.tier != AsTier::Tier1) {
      EXPECT_FALSE(node.providers.empty()) << asn;
    }
    EXPECT_FALSE(node.prefixes.empty()) << asn;
    EXPECT_FALSE(node.country.empty());
    // Stubs never have customers.
    if (node.tier == AsTier::Stub) {
      EXPECT_TRUE(node.customers.empty());
    }
  }
  EXPECT_EQ(t1, 3u);
  EXPECT_EQ(transit, 10u);
  EXPECT_EQ(stub, 30u);
}

TEST(Topology, Tier1Clique) {
  Topology topo = Topology::Generate(SmallConfig());
  std::vector<Asn> t1s;
  for (const auto& [asn, node] : topo.nodes()) {
    if (node.tier == AsTier::Tier1) t1s.push_back(asn);
  }
  for (Asn a : t1s) {
    for (Asn b : t1s) {
      if (a == b) continue;
      EXPECT_EQ(topo.relationship(a, b), Topology::Rel::Peer);
    }
  }
}

TEST(Topology, RelationshipsAreSymmetric) {
  Topology topo = Topology::Generate(SmallConfig());
  for (const auto& link : topo.links()) {
    if (link.type == LinkType::CustomerProvider) {
      EXPECT_EQ(topo.relationship(link.a, link.b), Topology::Rel::Customer);
      EXPECT_EQ(topo.relationship(link.b, link.a), Topology::Rel::Provider);
    } else {
      EXPECT_EQ(topo.relationship(link.a, link.b), Topology::Rel::Peer);
      EXPECT_EQ(topo.relationship(link.b, link.a), Topology::Rel::Peer);
    }
  }
}

TEST(Topology, DeterministicForSeed) {
  Topology a = Topology::Generate(SmallConfig());
  Topology b = Topology::Generate(SmallConfig());
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  EXPECT_EQ(a.links().size(), b.links().size());
  for (const auto& [asn, node] : a.nodes()) {
    EXPECT_EQ(node.prefixes, b.node(asn).prefixes);
  }
}

TEST(Topology, PrefixesAreUniqueAcrossAses) {
  Topology topo = Topology::Generate(SmallConfig());
  std::set<Prefix> seen;
  for (const auto& [asn, prefix] : topo.all_origins()) {
    EXPECT_TRUE(seen.insert(prefix).second) << prefix.ToString();
  }
}

TEST(Topology, AddStubPlantsActor) {
  Topology topo = Topology::Generate(SmallConfig());
  Asn provider = 0;
  for (const auto& [asn, node] : topo.nodes()) {
    if (node.tier == AsTier::Transit) {
      provider = asn;
      break;
    }
  }
  topo.AddStub(137, "IT", {P("193.206.0.0/16")}, {provider});
  EXPECT_TRUE(topo.has_node(137));
  EXPECT_EQ(topo.relationship(137, provider), Topology::Rel::Provider);
  EXPECT_EQ(topo.node(137).country, "IT");
}

TEST(Routing, EveryAsReachesEveryPrefix) {
  // Connected valley-free topology: all ASes get a route to any prefix.
  Topology topo = Topology::Generate(SmallConfig());
  auto origins = topo.all_origins();
  ASSERT_FALSE(origins.empty());
  auto [origin_asn, prefix] = origins.front();
  RouteMap routes = PropagateRoutes(topo, {OriginSpec{origin_asn, {}}});
  EXPECT_EQ(routes.size(), topo.nodes().size());
  EXPECT_EQ(routes.at(origin_asn).source, RouteSource::Origin);
  EXPECT_TRUE(routes.at(origin_asn).path.empty());
}

TEST(Routing, PathsAreValleyFreeAndLoopFree) {
  Topology topo = Topology::Generate(SmallConfig());
  auto [origin_asn, prefix] = topo.all_origins().front();
  RouteMap routes = PropagateRoutes(topo, {OriginSpec{origin_asn, {}}});
  for (const auto& [asn, route] : routes) {
    if (route.path.empty()) continue;
    EXPECT_EQ(route.path.back(), origin_asn);
    // Loop-free.
    std::set<Asn> seen{asn};
    for (Asn hop : route.path) {
      EXPECT_TRUE(seen.insert(hop).second)
          << "loop via " << hop << " from " << asn;
    }
    // Valley-free: once the path goes down (provider->customer) or
    // crosses a peer link, it must keep going down. Walk from `asn`.
    std::vector<Asn> full{asn};
    full.insert(full.end(), route.path.begin(), route.path.end());
    bool descending = false;
    int peer_crossings = 0;
    for (size_t i = 0; i + 1 < full.size(); ++i) {
      auto rel = topo.relationship(full[i], full[i + 1]);
      if (rel == Topology::Rel::Provider) {
        EXPECT_FALSE(descending) << "valley in path from " << asn;
      } else if (rel == Topology::Rel::Peer) {
        ++peer_crossings;
        EXPECT_FALSE(descending) << "peer after descent from " << asn;
        descending = true;
      } else if (rel == Topology::Rel::Customer) {
        descending = true;
      } else {
        FAIL() << "path uses non-adjacent ASes " << full[i] << "->"
               << full[i + 1];
      }
    }
    EXPECT_LE(peer_crossings, 1);
  }
}

TEST(Routing, PrefersCustomerOverPeerOverProvider) {
  Topology topo = Topology::Generate(SmallConfig());
  auto [origin_asn, prefix] = topo.all_origins().front();
  RouteMap routes = PropagateRoutes(topo, {OriginSpec{origin_asn, {}}});
  for (const auto& [asn, route] : routes) {
    if (route.path.empty()) continue;
    auto rel = topo.relationship(asn, route.path.front());
    switch (route.source) {
      case RouteSource::Customer:
        EXPECT_EQ(rel, Topology::Rel::Customer);
        break;
      case RouteSource::Peer:
        EXPECT_EQ(rel, Topology::Rel::Peer);
        break;
      case RouteSource::Provider:
        EXPECT_EQ(rel, Topology::Rel::Provider);
        break;
      case RouteSource::Origin:
        FAIL();
    }
  }
}

TEST(Routing, OriginCommunityAttached) {
  Topology topo = Topology::Generate(SmallConfig());
  auto [origin_asn, prefix] = topo.all_origins().front();
  RouteMap routes =
      PropagateRoutes(topo, {OriginSpec{origin_asn, {bgp::Community(9, 9)}}});
  const Route& at_origin = routes.at(origin_asn);
  ASSERT_GE(at_origin.communities.size(), 2u);
  EXPECT_EQ(at_origin.communities[0], bgp::Community(9, 9));
}

TEST(Routing, MoasOriginsSplitTheWorld) {
  Topology topo = Topology::Generate(SmallConfig());
  // Two stub origins announce the same prefix.
  std::vector<Asn> stubs;
  for (const auto& [asn, node] : topo.nodes()) {
    if (node.tier == AsTier::Stub) stubs.push_back(asn);
  }
  std::sort(stubs.begin(), stubs.end());
  ASSERT_GE(stubs.size(), 2u);
  Asn o1 = stubs.front(), o2 = stubs.back();
  RouteMap routes =
      PropagateRoutes(topo, {OriginSpec{o1, {}}, OriginSpec{o2, {}}});
  std::set<Asn> origins_seen;
  for (const auto& [asn, route] : routes) {
    origins_seen.insert(route.origin(asn));
  }
  EXPECT_EQ(origins_seen, (std::set<Asn>{o1, o2}));
}

TEST(Routing, InactiveSubgraphExcluded) {
  Topology topo = Topology::Generate(SmallConfig());
  auto [origin_asn, prefix] = topo.all_origins().front();
  std::unordered_map<Asn, bool> active;
  for (const auto& [asn, _] : topo.nodes()) active[asn] = true;
  // Deactivate the origin: nobody has a route.
  active[origin_asn] = false;
  RouteMap routes =
      PropagateRoutes(topo, {OriginSpec{origin_asn, {}}}, &active);
  EXPECT_TRUE(routes.empty());
}

class WorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = Topology::Generate(SmallConfig());
    world_ = std::make_unique<World>(&topo_);
    world_->AnnounceAll();
    vps_ = topo_.asns_sorted();
  }
  Topology topo_;
  std::unique_ptr<World> world_;
  std::vector<Asn> vps_;
};

TEST_F(WorldTest, AnnounceAllMakesEverythingVisible) {
  for (const auto& [asn, prefix] : topo_.all_origins()) {
    auto route = world_->ExportedRoute(vps_.front(), prefix, true);
    ASSERT_TRUE(route.has_value()) << prefix.ToString();
  }
}

TEST_F(WorldTest, WithdrawEmitsDeltasAndClearsRoutes) {
  auto [origin, prefix] = topo_.all_origins().front();
  auto deltas = world_->Withdraw(prefix, vps_);
  EXPECT_EQ(deltas.size(), vps_.size());  // everyone lost the route
  for (const auto& d : deltas) {
    EXPECT_TRUE(d.before.has_value());
    EXPECT_FALSE(d.after.has_value());
  }
  EXPECT_FALSE(world_->ExportedRoute(vps_.front(), prefix, true).has_value());
  // Re-announce restores.
  auto deltas2 = world_->SetOrigins(prefix, {OriginSpec{origin, {}}}, vps_);
  EXPECT_EQ(deltas2.size(), vps_.size());
}

TEST_F(WorldTest, NoopChangeYieldsNoDeltas) {
  auto [origin, prefix] = topo_.all_origins().front();
  auto deltas = world_->SetOrigins(prefix, {OriginSpec{origin, {}}}, vps_);
  // Same origin re-announced with same communities: only ASes whose path
  // changed get deltas. With identical inputs the propagation is
  // deterministic, so there are none.
  EXPECT_TRUE(deltas.empty());
}

TEST_F(WorldTest, PartialFeedHidesPeerAndProviderRoutes) {
  auto [origin, prefix] = topo_.all_origins().front();
  size_t full = 0, partial = 0;
  for (Asn vp : vps_) {
    if (world_->ExportedRoute(vp, prefix, true)) ++full;
    if (world_->ExportedRoute(vp, prefix, false)) ++partial;
  }
  EXPECT_EQ(full, vps_.size());
  EXPECT_LT(partial, full);  // most ASes learn via peer/provider
  EXPECT_GE(partial, 1u);    // the origin itself exports it
}

TEST_F(WorldTest, ExportedTableSizesMatchFeedPolicy) {
  Asn stub = 0;
  for (const auto& [asn, node] : topo_.nodes()) {
    if (node.tier == AsTier::Stub) {
      stub = asn;
      break;
    }
  }
  auto full_table = world_->ExportedTable(stub, true);
  auto partial_table = world_->ExportedTable(stub, false);
  EXPECT_EQ(full_table.size(), world_->announced().size());
  EXPECT_LT(partial_table.size(), full_table.size() / 2);
}

TEST_F(WorldTest, TracerouteReachesOrigin) {
  auto [origin, prefix] = topo_.all_origins().front();
  IpAddress dst = prefix.address();
  for (Asn src : {vps_.front(), vps_.back()}) {
    auto result = world_->Traceroute(src, dst);
    EXPECT_TRUE(result.reached_origin) << "from " << src;
    EXPECT_FALSE(result.blackholed);
    EXPECT_EQ(result.hops.back(), origin);
  }
}

TEST_F(WorldTest, TracerouteFailsForWithdrawnPrefix) {
  auto [origin, prefix] = topo_.all_origins().front();
  world_->Withdraw(prefix, {});
  auto result = world_->Traceroute(vps_.front(), prefix.address());
  EXPECT_FALSE(result.reached_origin);
  EXPECT_TRUE(result.no_route);
}

TEST_F(WorldTest, RtbhBlackholesAtSupportingProvider) {
  // Find a stub with a provider that supports blackholing.
  Asn victim = 0, provider = 0;
  for (const auto& [asn, node] : topo_.nodes()) {
    if (node.tier != AsTier::Stub) continue;
    for (Asn p : node.providers) {
      if (topo_.node(p).supports_blackholing) {
        victim = asn;
        provider = p;
        break;
      }
    }
    if (victim) break;
  }
  ASSERT_NE(victim, 0u) << "test topology has no blackholing provider";

  // Victim announces a /32 tagged with the provider's blackhole community.
  Prefix target(topo_.node(victim).prefixes.front().address(), 32);
  world_->SetOrigins(
      target,
      {OriginSpec{victim,
                  {bgp::Community(uint16_t(provider), kBlackholeValue)}}},
      {});
  EXPECT_EQ(world_->blackholers(target), std::set<Asn>{provider});

  // Traffic whose forwarding path crosses the provider is dropped.
  size_t dropped = 0, delivered = 0;
  for (Asn src : vps_) {
    if (src == victim) continue;
    auto result = world_->Traceroute(src, target.address());
    if (result.blackholed) {
      ++dropped;
      EXPECT_EQ(result.hops.back(), provider);
    } else if (result.reached_origin) {
      ++delivered;
    }
  }
  EXPECT_GT(dropped, 0u);
  // The /32 still propagates (no egress filtering), so sources whose best
  // path avoids the blackholing provider still deliver — unless the victim
  // is single-homed behind it.
  if (topo_.node(victim).providers.size() > 1) {
    EXPECT_GT(delivered, 0u);
  }
}

TEST(Driver, BoundaryEventIncludedInRibAndNextUpdatesWindow) {
  // An event firing exactly at a dump boundary must be reflected in the
  // RIB written at that instant, and its update messages must land in the
  // updates window *starting* there (not the one ending there).
  std::string root = (std::filesystem::temp_directory_path() /
                      ("drv_boundary_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove_all(root);
  Topology topo = Topology::Generate(SmallConfig());
  auto [victim, prefix] = topo.all_origins().front();
  SimDriver driver(std::move(topo), root, 5);
  CollectorConfig cfg;
  cfg.project = "ris";
  cfg.name = "rrc00";
  cfg.rib_period = 1800;
  cfg.update_period = 300;
  cfg.state_messages = true;
  cfg.publish_delay = 0;
  cfg.vps = PickVps(driver.topology(), 3, 0.0, 42);
  driver.AddCollector(cfg);
  driver.world().AnnounceAll();

  Timestamp start = 1800000000;
  // Withdraw exactly at the second RIB boundary.
  Timestamp boundary = start + 1800;
  driver.AddEvent(SimEvent::WithdrawAt(boundary, prefix));
  ASSERT_TRUE(driver.Run(start, start + 3600).ok());

  broker::ArchiveIndex index(root);
  ASSERT_TRUE(index.Rescan().ok());
  size_t withdrawals_before = 0, withdrawals_at = 0;
  bool rib_at_boundary_has_prefix = false;
  for (const auto& f : index.files()) {
    auto scan = mrt::ScanFile(f.path);
    ASSERT_TRUE(scan.ok()) << f.path;
    for (const auto& msg : scan->messages) {
      if (f.type == broker::DumpType::Rib && f.start == boundary &&
          msg.is_rib()) {
        if (std::get<mrt::RibPrefix>(msg.body).prefix == prefix)
          rib_at_boundary_has_prefix = true;
      }
      if (f.type == broker::DumpType::Updates && msg.is_message()) {
        const auto& m = std::get<mrt::Bgp4mpMessage>(msg.body);
        for (const auto& w : m.update.withdrawn) {
          if (w != prefix) continue;
          if (f.start == boundary) ++withdrawals_at;
          if (f.end() <= boundary) ++withdrawals_before;
        }
      }
    }
  }
  // RIB at the boundary already reflects the withdrawal...
  EXPECT_FALSE(rib_at_boundary_has_prefix);
  // ...and the messages are in the window starting at the boundary.
  EXPECT_EQ(withdrawals_before, 0u);
  EXPECT_GT(withdrawals_at, 0u);
  std::filesystem::remove_all(root);
}

TEST(Driver, UpdateLossCounterTracksDrops) {
  std::string root = (std::filesystem::temp_directory_path() /
                      ("drv_loss_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove_all(root);
  Topology topo = Topology::Generate(SmallConfig());
  SimDriver driver(std::move(topo), root, 6);
  CollectorConfig cfg;
  cfg.project = "routeviews";
  cfg.name = "route-views2";
  cfg.update_loss_probability = 1.0;  // drop everything
  cfg.publish_delay = 0;
  cfg.vps = PickVps(driver.topology(), 3, 0.0, 43);
  driver.AddCollector(cfg);
  driver.world().AnnounceAll();
  Timestamp start = 1800000000;
  driver.AddFlapNoise(start, start + 1800, 200.0, 60);
  ASSERT_TRUE(driver.Run(start, start + 1800).ok());
  const auto& c = driver.collectors().front();
  EXPECT_GT(c.updates_lost(), 0u);
  EXPECT_EQ(c.update_messages_buffered(), 0u);
  std::filesystem::remove_all(root);
}

TEST(VpAddress, DeterministicAndDistinct) {
  EXPECT_EQ(VpAddressFor(0x1234), VpAddressFor(0x1234));
  EXPECT_NE(VpAddressFor(0x1234), VpAddressFor(0x1235));
  EXPECT_TRUE(VpAddressV6For(100).is_v6());
}

TEST(PickVps, RespectsCountAndDeterminism) {
  Topology topo = Topology::Generate(SmallConfig());
  auto a = PickVps(topo, 8, 0.5, 77);
  auto b = PickVps(topo, 8, 0.5, 77);
  ASSERT_EQ(a.size(), 8u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].asn, b[i].asn);
    EXPECT_EQ(a[i].full_feed, b[i].full_feed);
  }
  // No duplicate VPs.
  std::set<Asn> asns;
  for (const auto& vp : a) EXPECT_TRUE(asns.insert(vp.asn).second);
}

}  // namespace
}  // namespace bgps::sim
