#include "core/strand.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace bgps::core {
namespace {

// An Executor tenant is FIFO in *start* order but two of its tasks can
// overlap on different workers; the strand's whole job is to close that
// gap. Appending to a plain (unsynchronized) vector from many posting
// threads is exactly the access pattern sharded RoutingTables relies
// on — it only works if the strand really serializes execution.
TEST(Strand, SerializesTasksInPostOrder) {
  Executor executor({.threads = 4});
  auto tenant = executor.CreateTenant();
  Strand strand(tenant.get());

  std::vector<int> log;  // deliberately not synchronized
  constexpr int kTasks = 5000;
  for (int i = 0; i < kTasks; ++i) {
    strand.Post([&log, i] { log.push_back(i); });
  }
  strand.Drain();

  ASSERT_EQ(log.size(), size_t(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(log[i], i) << "out of order at " << i;
  EXPECT_EQ(strand.completed(), size_t(kTasks));
}

TEST(Strand, PostsFromManyThreadsStaySerialized) {
  Executor executor({.threads = 4});
  auto tenant = executor.CreateTenant();
  Strand strand(tenant.get());

  // Posters race each other (so global order is arbitrary) but each
  // poster's own sequence must appear in order, and the total must be
  // exact — any concurrent execution inside the strand would corrupt
  // the unsynchronized vector or drop entries.
  constexpr int kPosters = 4;
  constexpr int kPerPoster = 2000;
  std::vector<std::pair<int, int>> log;
  std::vector<std::thread> posters;
  for (int p = 0; p < kPosters; ++p) {
    posters.emplace_back([&, p] {
      for (int i = 0; i < kPerPoster; ++i) {
        strand.Post([&log, p, i] { log.emplace_back(p, i); });
      }
    });
  }
  for (auto& t : posters) t.join();
  strand.Drain();

  ASSERT_EQ(log.size(), size_t(kPosters) * kPerPoster);
  std::vector<int> next(kPosters, 0);
  for (const auto& [p, i] : log) {
    EXPECT_EQ(i, next[p]) << "poster " << p << " reordered";
    next[p] = i + 1;
  }
}

TEST(Strand, TasksMayPostMoreTasks) {
  Executor executor({.threads = 2});
  auto tenant = executor.CreateTenant();
  Strand strand(tenant.get());

  std::vector<int> log;
  strand.Post([&] {
    log.push_back(1);
    strand.Post([&] { log.push_back(3); });
    log.push_back(2);
  });
  strand.Drain();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Strand, DrainOnEmptyStrandReturnsImmediately) {
  Executor executor({.threads = 2});
  auto tenant = executor.CreateTenant();
  Strand strand(tenant.get());
  strand.Drain();
  EXPECT_EQ(strand.completed(), 0u);
  strand.Post([] {});
  strand.Drain();
  strand.Drain();  // idempotent
  EXPECT_EQ(strand.completed(), 1u);
}

TEST(Strand, IndependentStrandsOnOneTenantProgressIndependently) {
  Executor executor({.threads = 4});
  auto tenant = executor.CreateTenant();
  constexpr int kStrands = 3;
  constexpr int kTasks = 1000;
  std::vector<std::unique_ptr<Strand>> strands;
  std::vector<std::vector<int>> logs(kStrands);
  for (int s = 0; s < kStrands; ++s)
    strands.push_back(std::make_unique<Strand>(tenant.get()));
  for (int i = 0; i < kTasks; ++i) {
    for (int s = 0; s < kStrands; ++s) {
      strands[s]->Post([&logs, s, i] { logs[s].push_back(i); });
    }
  }
  for (auto& s : strands) s->Drain();
  for (int s = 0; s < kStrands; ++s) {
    ASSERT_EQ(logs[s].size(), size_t(kTasks));
    for (int i = 0; i < kTasks; ++i) EXPECT_EQ(logs[s][i], i);
  }
}

// Destruction drains: the lambda's captures must stay valid until the
// last posted task ran.
TEST(Strand, DestructorDrainsPendingTasks) {
  Executor executor({.threads = 4});
  auto tenant = executor.CreateTenant();
  std::atomic<int> ran{0};
  {
    Strand strand(tenant.get());
    for (int i = 0; i < 500; ++i) strand.Post([&ran] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 500);
}

}  // namespace
}  // namespace bgps::core
