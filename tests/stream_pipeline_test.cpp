// End-to-end tests of the three-stage asynchronous pipeline: every
// configuration (synchronous, prefetch, worker-side elem extraction,
// chunked decode, cross-batch prefetch) must emit the byte-identical
// record *and elem* sequence, live mode must keep strict client-pull
// semantics, and chunked decode must honor its memory bound.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <tuple>

#include "core/stream.hpp"
#include "mrt/encode.hpp"
#include "mrt/file.hpp"
#include "pool/stream_pool.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::core {
namespace {

using broker::DumpFileMeta;
using broker::DumpType;

// Fingerprint of one record (provenance + status + position) and of each
// of its elems (type, time, VP, prefix, path) — strong enough that a
// reordering, loss, or filter divergence between pipeline configurations
// cannot cancel out.
using RecordFp = std::tuple<Timestamp, std::string, int, int, int>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct StreamRun {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
  size_t subsets = 0;
  size_t max_open = 0;
  size_t batches_prefetched = 0;
  size_t max_records_buffered = 0;
};

StreamRun Drain(BgpStream& stream) {
  StreamRun out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream.Elems(*rec)) {
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  out.subsets = stream.subsets_merged();
  out.max_open = stream.max_open_files();
  out.batches_prefetched = stream.batches_prefetched();
  out.max_records_buffered = stream.max_records_buffered();
  return out;
}

class PipelineEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& a = testutil::GetSmallArchive();
    root_ = a.root;
    start_ = a.start;
    end_ = a.end;
  }

  // Streams the whole archive through a broker with a small response
  // window so multiple DataBatches flow (exercising batch boundaries).
  // When `pool` is given the stream is vended from it (the shared
  // decode runtime) instead of running a private pipeline.
  StreamRun Run(BgpStream::Options options,
                const std::vector<std::pair<std::string, std::string>>&
                    filters = {},
                bgps::StreamPool* pool = nullptr) {
    broker::Broker::Options bopt;
    bopt.clock = [] { return Timestamp(4102444800); };
    bopt.window = 900;  // 1-hour archive -> ~4 batches
    broker::Broker broker(root_, bopt);
    BrokerDataInterface di(&broker);
    std::unique_ptr<BgpStream> stream =
        pool ? pool->CreateStream(std::move(options))
             : std::make_unique<BgpStream>(std::move(options));
    for (const auto& [k, v] : filters) {
      EXPECT_TRUE(stream->AddFilter(k, v).ok()) << k << " " << v;
    }
    stream->SetInterval(start_, end_);
    stream->SetDataInterface(&di);
    EXPECT_TRUE(stream->Start().ok());
    StreamRun run = Drain(*stream);
    EXPECT_TRUE(stream->status().ok());
    return run;
  }

  std::string root_;
  Timestamp start_ = 0, end_ = 0;
};

BgpStream::Options FullPipeline() {
  BgpStream::Options opt;
  opt.prefetch_subsets = 3;
  opt.decode_threads = 2;
  opt.prefetch_batches = true;
  opt.extract_elems_in_workers = true;
  opt.max_records_in_flight = 256;
  return opt;
}

TEST_F(PipelineEquivalenceTest, AllConfigurationsEmitIdenticalStreams) {
  StreamRun sync = Run({});
  ASSERT_GT(sync.records.size(), 100u);
  ASSERT_GT(sync.elems.size(), 100u);

  struct Config {
    const char* name;
    BgpStream::Options options;
  };
  std::vector<Config> configs;
  {
    BgpStream::Options prefetch;
    prefetch.prefetch_subsets = 3;
    prefetch.decode_threads = 2;
    configs.push_back({"prefetch", prefetch});

    BgpStream::Options extract = prefetch;
    extract.extract_elems_in_workers = true;
    configs.push_back({"prefetch+extract", extract});

    BgpStream::Options chunked = prefetch;
    chunked.max_records_in_flight = 64;
    configs.push_back({"prefetch+chunked", chunked});

    BgpStream::Options cross = prefetch;
    cross.prefetch_batches = true;
    configs.push_back({"prefetch+crossbatch", cross});

    // Tiny chunked buffers force many refill bursts per file, so the
    // per-dump arena state (AS-path cache, interned provenance, reused
    // frame buffer) is exercised across task boundaries — the zero-copy
    // decode path must still be byte-invisible in the output.
    BgpStream::Options tiny = prefetch;
    tiny.max_records_in_flight = 8;
    tiny.extract_elems_in_workers = true;
    configs.push_back({"prefetch+chunked-tiny+extract", tiny});

    configs.push_back({"full", FullPipeline()});
  }
  for (auto& c : configs) {
    StreamRun run = Run(std::move(c.options));
    EXPECT_EQ(run.records, sync.records) << c.name;
    EXPECT_EQ(run.elems, sync.elems) << c.name;
    EXPECT_EQ(run.subsets, sync.subsets) << c.name;
    EXPECT_EQ(run.max_open, sync.max_open) << c.name;
  }
}

TEST_F(PipelineEquivalenceTest, SharedStreamPoolEmitsIdenticalStreams) {
  StreamRun sync = Run({});
  ASSERT_GT(sync.records.size(), 100u);

  // K = 3 concurrent tenants on one 4-thread Executor + one governor,
  // all streaming the same archive: each must reproduce the synchronous
  // fingerprint exactly.
  auto pool = bgps::StreamPool::Create({.threads = 4, .record_budget = 256});
  ASSERT_TRUE(pool.ok());
  constexpr int kTenants = 3;
  std::vector<StreamRun> runs(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        BgpStream::Options opt;
        opt.prefetch_batches = true;
        opt.extract_elems_in_workers = true;
        runs[size_t(t)] = Run(std::move(opt), {}, pool->get());
      });
    }
    for (auto& c : consumers) c.join();
  }
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(runs[size_t(t)].records, sync.records) << "tenant " << t;
    EXPECT_EQ(runs[size_t(t)].elems, sync.elems) << "tenant " << t;
    EXPECT_EQ(runs[size_t(t)].subsets, sync.subsets) << "tenant " << t;
  }
  EXPECT_LE((*pool)->max_records_in_use(), 256u);
}

TEST_F(PipelineEquivalenceTest, WorkerSideFilteringMatchesInlineFiltering) {
  std::vector<std::pair<std::string, std::string>> filters = {
      {"elemtype", "announcements"}, {"ipversion", "4"}};
  StreamRun inline_run = Run({}, filters);
  ASSERT_GT(inline_run.elems.size(), 10u);

  BgpStream::Options opt = FullPipeline();
  StreamRun worker_run = Run(std::move(opt), filters);
  EXPECT_EQ(worker_run.records, inline_run.records);
  EXPECT_EQ(worker_run.elems, inline_run.elems);
}

TEST_F(PipelineEquivalenceTest, CrossBatchPrefetchOverlapsBrokerFetches) {
  StreamRun sync = Run({});
  EXPECT_EQ(sync.batches_prefetched, 0u);

  BgpStream::Options opt;
  opt.prefetch_subsets = 2;
  opt.prefetch_batches = true;
  StreamRun cross = Run(std::move(opt));
  EXPECT_EQ(cross.records, sync.records);
  EXPECT_GT(cross.batches_prefetched, 0u);
}

TEST_F(PipelineEquivalenceTest, SecondElemsCallFallsBackToInlineExtraction) {
  broker::Broker::Options bopt;
  bopt.clock = [] { return Timestamp(4102444800); };
  broker::Broker broker(root_, bopt);
  BrokerDataInterface di(&broker);
  BgpStream stream(FullPipeline());
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  bool saw_elems = false;
  while (auto rec = stream.NextRecord()) {
    std::vector<Elem> first = stream.Elems(*rec);
    // The move-out consumed the worker-extracted cache; a second call
    // must re-extract inline and yield the same elems.
    std::vector<Elem> second = stream.Elems(*rec);
    ASSERT_EQ(first.size(), second.size());
    if (!first.empty()) saw_elems = true;
  }
  EXPECT_TRUE(saw_elems);
}

TEST_F(PipelineEquivalenceTest, FullPipelineStreamsLiveArchiveToCompletion) {
  Timestamp now = start_ + 301;
  broker::Broker::Options bopt;
  bopt.clock = [&now] { return now; };
  broker::Broker broker(root_, bopt);
  BrokerDataInterface di(&broker);

  BgpStream::Options opt = FullPipeline();
  opt.poll_wait = [&] { now += 300; };
  opt.max_consecutive_polls = 500;
  BgpStream stream(std::move(opt));
  stream.SetLive(start_);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  size_t records = 0;
  while (auto rec = stream.NextRecord()) ++records;
  EXPECT_GT(records, 100u);
  // Live mode keeps client-pull semantics: no eager batch fetches.
  EXPECT_EQ(stream.batches_prefetched(), 0u);
}

// A data interface that never has data: live mode must give up after
// exactly max_consecutive_polls empty polls even with every pipeline
// knob enabled.
class NeverReadyInterface : public DataInterface {
 public:
  DataBatch NextBatch(const FilterSet&) override {
    DataBatch b;
    b.retry_later = true;
    return b;
  }
  void Refresh() override { ++refreshes; }
  size_t refreshes = 0;
};

TEST(PipelineLiveTest, PollCapIsExactWithFullPipeline) {
  NeverReadyInterface di;
  BgpStream::Options opt = FullPipeline();
  size_t polls = 0;
  opt.poll_wait = [&polls] { ++polls; };
  opt.max_consecutive_polls = 7;
  BgpStream stream(std::move(opt));
  stream.SetLive(0);
  stream.SetDataInterface(&di);
  ASSERT_TRUE(stream.Start().ok());
  EXPECT_EQ(stream.NextRecord(), std::nullopt);
  EXPECT_EQ(polls, 6u);
  EXPECT_EQ(di.refreshes, 6u);
  EXPECT_EQ(stream.batches_prefetched(), 0u);
}

TEST(PipelineOptionsTest, WorkerKnobsRequirePrefetch) {
  NeverReadyInterface di;
  {
    BgpStream::Options opt;
    opt.extract_elems_in_workers = true;
    BgpStream stream(std::move(opt));
    stream.SetInterval(0, 100);
    stream.SetDataInterface(&di);
    EXPECT_FALSE(stream.Start().ok());
  }
  {
    BgpStream::Options opt;
    opt.max_records_in_flight = 64;
    BgpStream stream(std::move(opt));
    stream.SetInterval(0, 100);
    stream.SetDataInterface(&di);
    EXPECT_FALSE(stream.Start().ok());
  }
}

// Start() validation of the runtime-layer injection knobs, with the
// exact diagnostics users will see.
TEST(PipelineOptionsTest, RuntimeLayerKnobCombosFailStartExactly) {
  NeverReadyInterface di;
  auto start_status = [&di](BgpStream::Options opt) {
    BgpStream stream(std::move(opt));
    stream.SetInterval(0, 100);
    stream.SetDataInterface(&di);
    return stream.Start();
  };
  {
    // Executor without prefetch: there are no decode tasks to share.
    BgpStream::Options opt;
    opt.executor = std::make_shared<Executor>(Executor::Options{});
    Status st = start_status(std::move(opt));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(),
              "Options::executor requires prefetch_subsets > 0 (the "
              "synchronous path never decodes off-thread)");
  }
  {
    // Zero-thread executor: tasks would queue forever.
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.executor = std::make_shared<Executor>(Executor::Options{.threads = 0});
    Status st = start_status(std::move(opt));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(),
              "Options::executor has no worker threads (decode tasks would "
              "never run)");
  }
  {
    // Governor without prefetch.
    BgpStream::Options opt;
    opt.governor = std::make_shared<MemoryGovernor>(64);
    Status st = start_status(std::move(opt));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(),
              "Options::governor requires prefetch_subsets > 0");
  }
  {
    // Governor without chunked decode: nothing would ever lease slots.
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.governor = std::make_shared<MemoryGovernor>(64);
    Status st = start_status(std::move(opt));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(),
              "Options::governor requires max_records_in_flight > 0 (the "
              "governor leases chunked-decode buffer slots)");
  }
  {
    // A zero-record budget could never cover any subset's floor slots.
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.max_records_in_flight = 64;
    opt.governor = std::make_shared<MemoryGovernor>(0);
    Status st = start_status(std::move(opt));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "Options::governor budget must be > 0 records");
  }
  {
    // And the happy path with both injected starts fine.
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.max_records_in_flight = 64;
    opt.executor = std::make_shared<Executor>(Executor::Options{.threads = 2});
    opt.governor = std::make_shared<MemoryGovernor>(64);
    EXPECT_TRUE(start_status(std::move(opt)).ok());
  }
}

// --- chunked-decode memory bound ------------------------------------------

// Hands the whole file set to the stream in one batch, then ends.
class VectorDataInterface : public DataInterface {
 public:
  explicit VectorDataInterface(std::vector<DumpFileMeta> files)
      : files_(std::move(files)) {}
  DataBatch NextBatch(const FilterSet&) override {
    DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<DumpFileMeta> files_;
  bool served_ = false;
};

// Emulates one large RIB-style subset (paper §3.3.4): many files with
// fully overlapping intervals, each holding a few hundred records.
void WriteOverlappingArchive(const std::string& dir, int files,
                             int records_per_file) {
  std::filesystem::create_directories(dir);
  for (int f = 0; f < files; ++f) {
    Timestamp start = 1458000000 + f;
    mrt::MrtFileWriter w;
    std::string path =
        (std::filesystem::path(dir) / (std::to_string(f) + ".mrt")).string();
    ASSERT_TRUE(w.Open(path).ok());
    for (int i = 0; i < records_per_file; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = 65000 + bgp::Asn(f);
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, 0, uint8_t(f), 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path =
          bgp::AsPath::Sequence({65000 + bgp::Asn(f), 3356, 15169});
      m.update.attrs.next_hop = IpAddress::V4(10, 0, uint8_t(f), 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(uint32_t(10 + i) << 24), 16));
      ASSERT_TRUE(
          w.Write(mrt::EncodeBgp4mpUpdate(start + Timestamp(i) * 5, m)).ok());
    }
    ASSERT_TRUE(w.Close().ok());
  }
}

class ChunkedStressTest : public ::testing::Test {
 protected:
  static constexpr int kFiles = 40;
  static constexpr int kRecordsPerFile = 250;

  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bgps_chunked_stress_" + std::to_string(::getpid())))
               .string();
    WriteOverlappingArchive(dir_, kFiles, kRecordsPerFile);
    ASSERT_FALSE(HasFatalFailure());
    for (int f = 0; f < kFiles; ++f) {
      DumpFileMeta meta;
      meta.project = "stress";
      meta.collector = "c" + std::to_string(f);
      meta.type = DumpType::Updates;
      meta.start = 1458000000 + f;
      meta.duration = 3600;
      meta.path =
          (std::filesystem::path(dir_) / (std::to_string(f) + ".mrt")).string();
      files_.push_back(std::move(meta));
    }
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StreamRun Run(BgpStream::Options options) {
    VectorDataInterface di(files_);
    BgpStream stream(std::move(options));
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    EXPECT_TRUE(stream.Start().ok());
    return Drain(stream);
  }

  std::string dir_;
  std::vector<DumpFileMeta> files_;
};

TEST_F(ChunkedStressTest, BoundedBuffersStreamALargeSubsetIdentically) {
  StreamRun sync = Run({});
  ASSERT_EQ(sync.records.size(), size_t(kFiles) * kRecordsPerFile);
  ASSERT_EQ(sync.subsets, 1u);  // fully overlapping: one giant subset

  constexpr size_t kBound = 120;  // 3 records per file vs 250 materialized
  BgpStream::Options opt;
  opt.prefetch_subsets = 2;
  opt.decode_threads = 2;
  opt.max_records_in_flight = kBound;
  opt.extract_elems_in_workers = true;
  StreamRun chunked = Run(std::move(opt));

  EXPECT_EQ(chunked.records, sync.records);
  EXPECT_EQ(chunked.elems, sync.elems);
  EXPECT_GT(chunked.max_records_buffered, 0u);
  // The bound is per in-flight subset; a single subset must respect it
  // exactly.
  EXPECT_LE(chunked.max_records_buffered, kBound);
}

// The arena pipeline — DumpReader's per-dump AS-path intern cache,
// arena-backed keys, and zero-copy record bodies — must be invisible in
// the decoded output: record for record identical to a cache-free
// DecodeRecord baseline over the same raw bytes.
TEST_F(ChunkedStressTest, ArenaCachedDecodeMatchesCacheFreeBaseline) {
  auto fingerprint = [](Timestamp ts, const mrt::Bgp4mpMessage& m) {
    std::string fp = std::to_string(ts);
    fp += '|';
    fp += m.update.attrs.as_path.ToString();
    fp += '|';
    for (const auto& p : m.update.announced) {
      fp += p.ToString();
      fp += ',';
    }
    return fp;
  };

  // Baseline: raw framing + decode with no AttrDecodeCtx (every AS path
  // decoded from the wire bytes, no cache, no arena).
  std::vector<std::string> expect;
  {
    mrt::MrtFileReader reader;
    ASSERT_TRUE(reader.Open(files_[0].path).ok());
    while (true) {
      auto raw = reader.Next();
      if (!raw.ok()) break;
      auto msg = mrt::DecodeRecord(*raw, /*ctx=*/nullptr);
      ASSERT_TRUE(msg.ok());
      expect.push_back(
          fingerprint(msg->timestamp, std::get<mrt::Bgp4mpMessage>(msg->body)));
    }
  }
  ASSERT_EQ(expect.size(), size_t(kRecordsPerFile));

  // The arena pipeline: DumpReader threads its per-dump cache into
  // every decode (repeat AS paths come out of the cache, keys live in
  // the dump's arena).
  std::vector<std::string> got;
  DumpReader reader(files_[0]);
  while (auto rec = reader.Next()) {
    ASSERT_EQ(rec->status, RecordStatus::Valid);
    got.push_back(fingerprint(rec->timestamp,
                              std::get<mrt::Bgp4mpMessage>(rec->msg.body)));
  }
  EXPECT_EQ(got, expect);
}

TEST_F(ChunkedStressTest, WholeFileModeMaterializesMoreThanChunkedMode) {
  // Sanity-check the stat plumbing: whole-file mode reports no chunked
  // buffering at all.
  BgpStream::Options opt;
  opt.prefetch_subsets = 2;
  StreamRun whole = Run(std::move(opt));
  EXPECT_EQ(whole.max_records_buffered, 0u);
  EXPECT_EQ(whole.records.size(), size_t(kFiles) * kRecordsPerFile);
}

}  // namespace
}  // namespace bgps::core
