// Tests of the multi-tenant StreamPool service layer: K concurrent
// streams over disjoint archives on one shared Executor must produce
// exactly the per-stream record/elem sequences K private pipelines
// produce, while the MemoryGovernor keeps the *total* records buffered
// across all tenants under one hard budget.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <thread>
#include <tuple>

#include "mrt/file.hpp"
#include "pool/stream_pool.hpp"

namespace bgps {
namespace {

using broker::DumpFileMeta;
using broker::DumpType;
using core::BgpStream;

using RecordFp = std::tuple<Timestamp, std::string, int, int, int>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct StreamRun {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
  size_t max_records_buffered = 0;
  Status status;
};

StreamRun Drain(BgpStream& stream) {
  StreamRun out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream.Elems(*rec)) {
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  out.max_records_buffered = stream.max_records_buffered();
  out.status = stream.status();
  return out;
}

// Hands the whole file set to the stream in one batch, then ends.
class VectorDataInterface : public core::DataInterface {
 public:
  explicit VectorDataInterface(std::vector<DumpFileMeta> files)
      : files_(std::move(files)) {}
  core::DataBatch NextBatch(const core::FilterSet&) override {
    core::DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<DumpFileMeta> files_;
  bool served_ = false;
};

// One tenant's archive: `files` fully-overlapping updates dumps (so
// they form a single subset), each with `records_per_file` records.
// Tenants get distinct ASNs/prefix bytes so a cross-tenant mixup cannot
// fingerprint equal.
std::vector<DumpFileMeta> WriteTenantArchive(const std::string& dir,
                                             int tenant, int files,
                                             int records_per_file) {
  std::filesystem::create_directories(dir);
  std::vector<DumpFileMeta> out;
  for (int f = 0; f < files; ++f) {
    Timestamp start = 1458000000 + Timestamp(tenant) * 100000 + f;
    std::string path = (std::filesystem::path(dir) /
                        (std::to_string(tenant) + "_" + std::to_string(f) +
                         ".mrt")).string();
    mrt::MrtFileWriter w;
    EXPECT_TRUE(w.Open(path).ok());
    for (int i = 0; i < records_per_file; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = bgp::Asn(65000 + tenant * 100 + f);
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, uint8_t(tenant), uint8_t(f), 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path = bgp::AsPath::Sequence(
          {bgp::Asn(65000 + tenant * 100 + f), 3356, 15169});
      m.update.attrs.next_hop = IpAddress::V4(10, uint8_t(tenant), 0, 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(uint32_t(tenant + 1) << 24 | uint32_t(i) << 8),
                 24));
      EXPECT_TRUE(
          w.Write(mrt::EncodeBgp4mpUpdate(start + Timestamp(i) * 5, m)).ok());
    }
    EXPECT_TRUE(w.Close().ok());

    DumpFileMeta meta;
    meta.project = "pool";
    meta.collector = "t" + std::to_string(tenant) + "c" + std::to_string(f);
    meta.type = DumpType::Updates;
    meta.start = start;
    meta.duration = 3600;
    meta.path = path;
    out.push_back(std::move(meta));
  }
  return out;
}

class StreamPoolTest : public ::testing::Test {
 protected:
  static constexpr int kTenants = 4;
  static constexpr int kFilesPerTenant = 6;
  static constexpr int kRecordsPerFile = 50;

  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bgps_stream_pool_" + std::to_string(::getpid()))).string();
    for (int t = 0; t < kTenants; ++t) {
      archives_.push_back(
          WriteTenantArchive(dir_, t, kFilesPerTenant, kRecordsPerFile));
    }
    ASSERT_FALSE(HasFatalFailure());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  // Drains tenant `t`'s archive through `stream`.
  StreamRun RunTenant(int t, std::unique_ptr<BgpStream> stream) {
    VectorDataInterface di(archives_[size_t(t)]);
    stream->SetInterval(0, 4102444800);
    stream->SetDataInterface(&di);
    EXPECT_TRUE(stream->Start().ok());
    return Drain(*stream);
  }

  // The reference: a private per-stream pipeline (PR-2 shape).
  StreamRun RunPrivate(int t) {
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.decode_threads = 1;
    opt.extract_elems_in_workers = true;
    opt.max_records_in_flight = 64;
    return RunTenant(t, std::make_unique<BgpStream>(std::move(opt)));
  }

  std::string dir_;
  std::vector<std::vector<DumpFileMeta>> archives_;
};

TEST_F(StreamPoolTest, SharedPoolStreamsMatchPrivatePipelines) {
  StreamPool::Options popt;
  popt.threads = 4;
  popt.record_budget = 256;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  for (int t = 0; t < 3; ++t) {  // K = 3 sequential tenants, one pool
    StreamRun expect = RunPrivate(t);
    ASSERT_EQ(expect.records.size(),
              size_t(kFilesPerTenant) * kRecordsPerFile);

    BgpStream::Options opt;
    opt.extract_elems_in_workers = true;
    StreamRun got = RunTenant(t, (*pool)->CreateStream(std::move(opt)));
    EXPECT_EQ(got.records, expect.records) << "tenant " << t;
    EXPECT_EQ(got.elems, expect.elems) << "tenant " << t;
    EXPECT_TRUE(got.status.ok());
  }
  EXPECT_EQ((*pool)->streams_created(), 3u);
  EXPECT_LE((*pool)->max_records_in_use(), 256u);
}

TEST_F(StreamPoolTest, ConcurrentTenantsMatchPrivatePipelinesOnOnePool) {
  // K = 4 streams over disjoint archives, one 4-thread Executor, one
  // global budget — the acceptance scenario.
  std::vector<StreamRun> expect;
  for (int t = 0; t < kTenants; ++t) expect.push_back(RunPrivate(t));

  StreamPool::Options popt;
  popt.threads = 4;
  popt.record_budget = 128;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  std::vector<StreamRun> got(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        BgpStream::Options opt;
        opt.extract_elems_in_workers = true;
        got[size_t(t)] = RunTenant(t, (*pool)->CreateStream(std::move(opt)));
      });
    }
    for (auto& c : consumers) c.join();
  }
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(got[size_t(t)].records, expect[size_t(t)].records)
        << "tenant " << t;
    EXPECT_EQ(got[size_t(t)].elems, expect[size_t(t)].elems)
        << "tenant " << t;
    EXPECT_TRUE(got[size_t(t)].status.ok()) << "tenant " << t;
  }
  // The governor's watermark proves the *global* bound held while all
  // four tenants buffered concurrently.
  EXPECT_GT((*pool)->max_records_in_use(), 0u);
  EXPECT_LE((*pool)->max_records_in_use(), 128u);
}

TEST_F(StreamPoolTest, GlobalBudgetBoundsBufferedRecordsUnderStress) {
  // A budget far below the tenants' combined appetite: every tenant's
  // subset wants kFilesPerTenant floors plus extras, and per-stream
  // max_records_in_flight (= budget by default) would allow 4× the
  // budget if the governor did not exist. Every stream must still
  // terminate with its full output.
  constexpr size_t kBudget = 40;
  StreamPool::Options popt;
  popt.threads = 3;
  popt.record_budget = kBudget;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  std::vector<StreamRun> got(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        got[size_t(t)] = RunTenant(t, (*pool)->CreateStream());
      });
    }
    for (auto& c : consumers) c.join();
  }
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(got[size_t(t)].records.size(),
              size_t(kFilesPerTenant) * kRecordsPerFile)
        << "tenant " << t;
    EXPECT_TRUE(got[size_t(t)].status.ok()) << "tenant " << t;
  }
  EXPECT_GT((*pool)->max_records_in_use(), 0u);
  EXPECT_LE((*pool)->max_records_in_use(), kBudget);
  // Everything was drained and released: the ledger balances to zero.
  EXPECT_EQ((*pool)->records_in_use(), 0u);
}

TEST_F(StreamPoolTest, VendedStreamDefaultsComeFromThePool) {
  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 96;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());
  StreamRun run = RunTenant(0, (*pool)->CreateStream());
  EXPECT_EQ(run.records.size(), size_t(kFilesPerTenant) * kRecordsPerFile);
  // Chunked decode was on (pool default: budget-bounded buffers).
  EXPECT_GT(run.max_records_buffered, 0u);
  EXPECT_LE(run.max_records_buffered, 96u);
}

TEST_F(StreamPoolTest, BudgetSmallerThanSubsetFileCountFailsTheStream) {
  // 6 files in the subset, budget 3: chunked decode needs one buffered
  // record per file to merge, so the stream must terminate with the
  // exact diagnostic instead of deadlocking.
  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 3;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());
  StreamRun run = RunTenant(0, (*pool)->CreateStream());
  EXPECT_TRUE(run.records.empty());
  EXPECT_EQ(run.status.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(run.status.message(),
            "memory governor budget (3 records) is smaller than the subset "
            "file count (6 files); chunked decode needs one buffered record "
            "per file");
}

TEST(StreamPoolCreateTest, RejectsZeroKnobsWithExactMessages) {
  {
    auto pool = StreamPool::Create({.threads = 0});
    ASSERT_FALSE(pool.ok());
    EXPECT_EQ(pool.status().message(), "StreamPool requires threads > 0");
  }
  {
    auto pool = StreamPool::Create({.threads = 2, .record_budget = 0});
    ASSERT_FALSE(pool.ok());
    EXPECT_EQ(pool.status().message(),
              "StreamPool requires record_budget > 0");
  }
  {
    auto pool = StreamPool::Create(
        {.threads = 2, .record_budget = 64, .prefetch_subsets = 0});
    ASSERT_FALSE(pool.ok());
    EXPECT_EQ(pool.status().message(),
              "StreamPool requires prefetch_subsets > 0 (vended streams "
              "decode on the shared pool)");
  }
}

}  // namespace
}  // namespace bgps
