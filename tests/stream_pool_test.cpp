// Tests of the multi-tenant StreamPool service layer: K concurrent
// streams over disjoint archives on one shared Executor must produce
// exactly the per-stream record/elem sequences K private pipelines
// produce, while the MemoryGovernor keeps the *total* records buffered
// across all tenants under one hard budget.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <tuple>

#include "mrt/encode.hpp"
#include "mrt/file.hpp"
#include "pool/stream_pool.hpp"

namespace bgps {
namespace {

using broker::DumpFileMeta;
using broker::DumpType;
using core::BgpStream;

using RecordFp = std::tuple<Timestamp, std::string, int, int, int>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct StreamRun {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
  size_t max_records_buffered = 0;
  Status status;
};

StreamRun Drain(BgpStream& stream) {
  StreamRun out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream.Elems(*rec)) {
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  out.max_records_buffered = stream.max_records_buffered();
  out.status = stream.status();
  return out;
}

// Hands the whole file set to the stream in one batch, then ends.
class VectorDataInterface : public core::DataInterface {
 public:
  explicit VectorDataInterface(std::vector<DumpFileMeta> files)
      : files_(std::move(files)) {}
  core::DataBatch NextBatch(const core::FilterSet&) override {
    core::DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<DumpFileMeta> files_;
  bool served_ = false;
};

// One tenant's archive: `files` fully-overlapping updates dumps (so
// they form a single subset), each with `records_per_file` records.
// Tenants get distinct ASNs/prefix bytes so a cross-tenant mixup cannot
// fingerprint equal.
std::vector<DumpFileMeta> WriteTenantArchive(const std::string& dir,
                                             int tenant, int files,
                                             int records_per_file) {
  std::filesystem::create_directories(dir);
  std::vector<DumpFileMeta> out;
  for (int f = 0; f < files; ++f) {
    Timestamp start = 1458000000 + Timestamp(tenant) * 100000 + f;
    std::string path = (std::filesystem::path(dir) /
                        (std::to_string(tenant) + "_" + std::to_string(f) +
                         ".mrt")).string();
    mrt::MrtFileWriter w;
    EXPECT_TRUE(w.Open(path).ok());
    for (int i = 0; i < records_per_file; ++i) {
      mrt::Bgp4mpMessage m;
      m.peer_asn = bgp::Asn(65000 + tenant * 100 + f);
      m.local_asn = 64512;
      m.peer_address = IpAddress::V4(10, uint8_t(tenant), uint8_t(f), 1);
      m.local_address = IpAddress::V4(192, 0, 2, 1);
      m.update.attrs.as_path = bgp::AsPath::Sequence(
          {bgp::Asn(65000 + tenant * 100 + f), 3356, 15169});
      m.update.attrs.next_hop = IpAddress::V4(10, uint8_t(tenant), 0, 1);
      m.update.announced.push_back(
          Prefix(IpAddress::V4(uint32_t(tenant + 1) << 24 | uint32_t(i) << 8),
                 24));
      EXPECT_TRUE(
          w.Write(mrt::EncodeBgp4mpUpdate(start + Timestamp(i) * 5, m)).ok());
    }
    EXPECT_TRUE(w.Close().ok());

    DumpFileMeta meta;
    meta.project = "pool";
    meta.collector = "t" + std::to_string(tenant) + "c" + std::to_string(f);
    meta.type = DumpType::Updates;
    meta.start = start;
    meta.duration = 3600;
    meta.path = path;
    out.push_back(std::move(meta));
  }
  return out;
}

class StreamPoolTest : public ::testing::Test {
 protected:
  static constexpr int kTenants = 4;
  static constexpr int kFilesPerTenant = 6;
  static constexpr int kRecordsPerFile = 50;

  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bgps_stream_pool_" + std::to_string(::getpid()))).string();
    for (int t = 0; t < kTenants; ++t) {
      archives_.push_back(
          WriteTenantArchive(dir_, t, kFilesPerTenant, kRecordsPerFile));
    }
    ASSERT_FALSE(HasFatalFailure());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  // Drains tenant `t`'s archive through `stream`.
  StreamRun RunTenant(int t, std::unique_ptr<BgpStream> stream) {
    VectorDataInterface di(archives_[size_t(t)]);
    stream->SetInterval(0, 4102444800);
    stream->SetDataInterface(&di);
    EXPECT_TRUE(stream->Start().ok());
    return Drain(*stream);
  }

  // The reference: a private per-stream pipeline (PR-2 shape).
  StreamRun RunPrivate(int t) {
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.decode_threads = 1;
    opt.extract_elems_in_workers = true;
    opt.max_records_in_flight = 64;
    return RunTenant(t, std::make_unique<BgpStream>(std::move(opt)));
  }

  std::string dir_;
  std::vector<std::vector<DumpFileMeta>> archives_;
};

TEST_F(StreamPoolTest, SharedPoolStreamsMatchPrivatePipelines) {
  StreamPool::Options popt;
  popt.threads = 4;
  popt.record_budget = 256;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  for (int t = 0; t < 3; ++t) {  // K = 3 sequential tenants, one pool
    StreamRun expect = RunPrivate(t);
    ASSERT_EQ(expect.records.size(),
              size_t(kFilesPerTenant) * kRecordsPerFile);

    BgpStream::Options opt;
    opt.extract_elems_in_workers = true;
    StreamRun got = RunTenant(t, (*pool)->CreateStream(std::move(opt)));
    EXPECT_EQ(got.records, expect.records) << "tenant " << t;
    EXPECT_EQ(got.elems, expect.elems) << "tenant " << t;
    EXPECT_TRUE(got.status.ok());
  }
  EXPECT_EQ((*pool)->streams_created(), 3u);
  EXPECT_LE((*pool)->max_records_in_use(), 256u);
}

TEST_F(StreamPoolTest, ConcurrentTenantsMatchPrivatePipelinesOnOnePool) {
  // K = 4 streams over disjoint archives, one 4-thread Executor, one
  // global budget — the acceptance scenario.
  std::vector<StreamRun> expect;
  for (int t = 0; t < kTenants; ++t) expect.push_back(RunPrivate(t));

  StreamPool::Options popt;
  popt.threads = 4;
  popt.record_budget = 128;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  std::vector<StreamRun> got(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        BgpStream::Options opt;
        opt.extract_elems_in_workers = true;
        got[size_t(t)] = RunTenant(t, (*pool)->CreateStream(std::move(opt)));
      });
    }
    for (auto& c : consumers) c.join();
  }
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(got[size_t(t)].records, expect[size_t(t)].records)
        << "tenant " << t;
    EXPECT_EQ(got[size_t(t)].elems, expect[size_t(t)].elems)
        << "tenant " << t;
    EXPECT_TRUE(got[size_t(t)].status.ok()) << "tenant " << t;
  }
  // The governor's watermark proves the *global* bound held while all
  // four tenants buffered concurrently.
  EXPECT_GT((*pool)->max_records_in_use(), 0u);
  EXPECT_LE((*pool)->max_records_in_use(), 128u);
}

TEST_F(StreamPoolTest, GlobalBudgetBoundsBufferedRecordsUnderStress) {
  // A budget far below the tenants' combined appetite: every tenant's
  // subset wants kFilesPerTenant floors plus extras, and per-stream
  // max_records_in_flight (= budget by default) would allow 4× the
  // budget if the governor did not exist. Every stream must still
  // terminate with its full output.
  constexpr size_t kBudget = 40;
  StreamPool::Options popt;
  popt.threads = 3;
  popt.record_budget = kBudget;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  std::vector<StreamRun> got(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        got[size_t(t)] = RunTenant(t, (*pool)->CreateStream());
      });
    }
    for (auto& c : consumers) c.join();
  }
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(got[size_t(t)].records.size(),
              size_t(kFilesPerTenant) * kRecordsPerFile)
        << "tenant " << t;
    EXPECT_TRUE(got[size_t(t)].status.ok()) << "tenant " << t;
  }
  EXPECT_GT((*pool)->max_records_in_use(), 0u);
  EXPECT_LE((*pool)->max_records_in_use(), kBudget);
  // Everything was drained and released: the ledger balances to zero.
  EXPECT_EQ((*pool)->records_in_use(), 0u);
}

TEST_F(StreamPoolTest, VendedStreamDefaultsComeFromThePool) {
  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 96;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());
  StreamRun run = RunTenant(0, (*pool)->CreateStream());
  EXPECT_EQ(run.records.size(), size_t(kFilesPerTenant) * kRecordsPerFile);
  // Chunked decode was on (pool default: budget-bounded buffers).
  EXPECT_GT(run.max_records_buffered, 0u);
  EXPECT_LE(run.max_records_buffered, 96u);
}

TEST_F(StreamPoolTest, BudgetSmallerThanSubsetFileCountFailsTheStream) {
  // 6 files in the subset, budget 3: chunked decode needs one buffered
  // record per file to merge, so the stream must terminate with the
  // exact diagnostic instead of deadlocking.
  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 3;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());
  StreamRun run = RunTenant(0, (*pool)->CreateStream());
  EXPECT_TRUE(run.records.empty());
  EXPECT_EQ(run.status.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(run.status.message(),
            "memory governor budget (3 records) is smaller than the subset "
            "file count (6 files); chunked decode needs one buffered record "
            "per file");
}

TEST_F(StreamPoolTest, WeightedTenantsMatchPrivatePipelinesAndShowInStats) {
  // A weight-4 "live" tenant sharing the pool with a weight-1 backfill:
  // scheduling weight changes *when* decode tasks run, never *what* the
  // streams emit.
  StreamRun expect0 = RunPrivate(0);
  StreamRun expect1 = RunPrivate(1);

  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 128;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  BgpStream::Options opt;
  opt.extract_elems_in_workers = true;
  auto live = (*pool)->CreateStream(opt, {.weight = 4, .name = "live"});
  auto backfill =
      (*pool)->CreateStream(opt, {.weight = 1, .name = "backfill"});

  StreamRun got0, got1;
  {
    std::vector<std::thread> consumers;
    consumers.emplace_back([&] {
      VectorDataInterface di(archives_[0]);
      live->SetInterval(0, 4102444800);
      live->SetDataInterface(&di);
      EXPECT_TRUE(live->Start().ok());
      got0 = Drain(*live);
    });
    consumers.emplace_back([&] {
      VectorDataInterface di(archives_[1]);
      backfill->SetInterval(0, 4102444800);
      backfill->SetDataInterface(&di);
      EXPECT_TRUE(backfill->Start().ok());
      got1 = Drain(*backfill);
    });
    for (auto& c : consumers) c.join();
  }
  EXPECT_EQ(got0.records, expect0.records);
  EXPECT_EQ(got0.elems, expect0.elems);
  EXPECT_EQ(got1.records, expect1.records);
  EXPECT_EQ(got1.elems, expect1.elems);

  // The Stats() snapshot names and weights the live tenants, and their
  // emitted/decoded counters reflect the finished drains.
  StreamPool::Snapshot snap = (*pool)->Stats();
  ASSERT_EQ(snap.tenants.size(), 2u);
  EXPECT_EQ(snap.tenants[0].name, "live");
  EXPECT_EQ(snap.tenants[0].weight, 4u);
  EXPECT_EQ(snap.tenants[1].name, "backfill");
  EXPECT_EQ(snap.tenants[1].weight, 1u);
  for (const auto& t : snap.tenants) {
    EXPECT_EQ(t.stats.records_emitted,
              size_t(kFilesPerTenant) * kRecordsPerFile)
        << t.name;
    EXPECT_GE(t.stats.files_decoded, size_t(kFilesPerTenant)) << t.name;
    EXPECT_GT(t.stats.tasks_executed, 0u) << t.name;
    EXPECT_EQ(t.stats.records_buffered, 0u) << t.name;  // fully drained
  }
  EXPECT_EQ(snap.executor.threads, 2u);
  EXPECT_GT(snap.executor.tasks_run, 0u);
  EXPECT_GT(snap.executor.dispatch_rounds, 0u);
  EXPECT_EQ(snap.governor.capacity, 128u);
  EXPECT_LE(snap.governor.max_in_use, 128u);
  EXPECT_EQ(snap.streams_created, 2u);

  // Destroyed streams drop out of the snapshot.
  live.reset();
  backfill.reset();
  snap = (*pool)->Stats();
  EXPECT_TRUE(snap.tenants.empty());
  EXPECT_EQ(snap.streams_created, 2u);
}

TEST_F(StreamPoolTest, IdleTenantReclaimReleasesBudgetAndPreservesOutput) {
  StreamRun expect = RunPrivate(0);

  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 64;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  BgpStream::Options opt;
  opt.extract_elems_in_workers = true;
  auto stream = (*pool)->CreateStream(
      opt, {.weight = 1, .name = "victim", .idle_reclaim_rounds = 25});
  VectorDataInterface di(archives_[0]);
  stream->SetInterval(0, 4102444800);
  stream->SetDataInterface(&di);
  ASSERT_TRUE(stream->Start().ok());

  // Drain part of the archive, then pause the consumer with the decode
  // pipeline loaded.
  StreamRun got;
  constexpr size_t kBeforePause = 40;
  for (size_t i = 0; i < kBeforePause; ++i) {
    auto rec = stream->NextRecord();
    ASSERT_TRUE(rec.has_value());
    got.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream->Elems(*rec)) {
      got.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }

  // The workers fill the buffers while the consumer is paused...
  auto deadline_ok = [&](auto pred) {
    auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  };
  ASSERT_TRUE(
      deadline_ok([&] { return stream->stats().records_buffered >= 20; }));
  size_t in_use_before = (*pool)->records_in_use();
  ASSERT_GE(in_use_before, 20u);

  // ...and they stay parked: with no budget contention, the
  // waiter-driven clock never moves, so no reclaim fires no matter how
  // long the consumer stays away.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(stream->stats().reclaims, 0u);
  EXPECT_GE((*pool)->records_in_use(), 20u);

  // The moment another demand blocks on the governor, the contention
  // hook jumps the executor's round clock to the victim's reclaim
  // deadline: its buffers drop and the leases release down to the
  // per-file floors — which is exactly what lets the blocked demand
  // proceed. Reclaim latency tracks contention, not wall time.
  std::thread rival([&] {
    Status st = (*pool)->governor()->Acquire(64 - kFilesPerTenant);
    EXPECT_TRUE(st.ok()) << st.ToString();
    (*pool)->governor()->Release(64 - kFilesPerTenant);
  });
  ASSERT_TRUE(deadline_ok([&] { return stream->stats().reclaims > 0; }));
  ASSERT_TRUE(
      deadline_ok([&] { return stream->stats().records_buffered == 0; }));
  ASSERT_TRUE(deadline_ok(
      [&] { return (*pool)->records_in_use() < in_use_before; }));
  rival.join();
  EXPECT_LE((*pool)->records_in_use(),
            size_t(kFilesPerTenant));  // floors only

  // Resume: the dropped records are re-decoded from the stored byte
  // checkpoints (SubmitUrgent + O(1) seek, no re-read of the consumed
  // prefix) and the full output is identical to the never-reclaimed
  // private run.
  while (auto rec = stream->NextRecord()) {
    got.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream->Elems(*rec)) {
      got.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  EXPECT_TRUE(stream->status().ok());
  EXPECT_EQ(got.records, expect.records);
  EXPECT_EQ(got.elems, expect.elems);
  EXPECT_GT(stream->stats().reclaims, 0u);
}

TEST_F(StreamPoolTest, StatsSnapshotInvariantsHoldUnderConcurrentStreams) {
  // 4 tenants stream concurrently while a sampler hammers Stats():
  // every snapshot must satisfy the ledger and scheduling invariants.
  constexpr size_t kBudget = 96;
  StreamPool::Options popt;
  popt.threads = 4;
  popt.record_budget = kBudget;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  std::atomic<bool> done{false};
  std::thread sampler([&] {
    size_t prev_tasks = 0, prev_rounds = 0, snapshots = 0;
    while (!done.load()) {
      StreamPool::Snapshot s = (*pool)->Stats();
      ++snapshots;
      EXPECT_EQ(s.governor.capacity, kBudget);
      EXPECT_LE(s.governor.in_use, kBudget);
      EXPECT_LE(s.governor.max_in_use, kBudget);
      EXPECT_LE(s.tenants.size(), size_t(kTenants));
      for (const auto& t : s.tenants) {
        EXPECT_LE(t.stats.records_buffered, kBudget) << t.name;
        EXPECT_LE(t.stats.records_emitted,
                  size_t(kFilesPerTenant) * kRecordsPerFile)
            << t.name;
        EXPECT_EQ(t.weight, 1u + (t.name == "t0" ? 3u : 0u)) << t.name;
      }
      EXPECT_EQ(s.executor.threads, 4u);
      EXPECT_GE(s.executor.tasks_run, prev_tasks);       // monotonic
      EXPECT_GE(s.executor.dispatch_rounds, prev_rounds);  // monotonic
      prev_tasks = s.executor.tasks_run;
      prev_rounds = s.executor.dispatch_rounds;
    }
    EXPECT_GT(snapshots, 0u);
  });

  std::vector<StreamRun> got(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        BgpStream::Options opt;
        opt.extract_elems_in_workers = true;
        StreamPool::TenantOptions topt;
        topt.weight = t == 0 ? 4 : 1;
        topt.name = "t" + std::to_string(t);
        got[size_t(t)] =
            RunTenant(t, (*pool)->CreateStream(opt, std::move(topt)));
      });
    }
    for (auto& c : consumers) c.join();
  }
  done = true;
  sampler.join();

  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(got[size_t(t)].records.size(),
              size_t(kFilesPerTenant) * kRecordsPerFile)
        << "tenant " << t;
    EXPECT_TRUE(got[size_t(t)].status.ok()) << "tenant " << t;
  }
  // Quiesced: every tenant gone, ledger balanced.
  StreamPool::Snapshot end = (*pool)->Stats();
  EXPECT_TRUE(end.tenants.empty());
  EXPECT_EQ(end.governor.in_use, 0u);
  EXPECT_EQ(end.executor.tenants, 0u);
  EXPECT_EQ(end.streams_created, size_t(kTenants));
}

TEST_F(StreamPoolTest, GovernorOverReleaseSurfacesThroughStreamStatus) {
  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 64;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  auto stream = (*pool)->CreateStream();
  VectorDataInterface di(archives_[0]);
  stream->SetInterval(0, 4102444800);
  stream->SetDataInterface(&di);
  ASSERT_TRUE(stream->Start().ok());
  ASSERT_TRUE(stream->NextRecord().has_value());

  // Simulate a double-release accounting bug: far more slots than are
  // leased. The stream must terminate with the governor's latched
  // diagnostic instead of hanging or quietly inflating the budget.
  (*pool)->governor()->Release(100000);
  while (stream->NextRecord()) {
  }
  EXPECT_FALSE(stream->status().ok());
  EXPECT_NE(stream->status().message().find("double release"),
            std::string::npos);
  EXPECT_FALSE((*pool)->governor()->health().ok());
}

TEST_F(StreamPoolTest, StartRejectsBadTenantKnobsWithExactMessages) {
  StreamPool::Options popt;
  popt.threads = 2;
  popt.record_budget = 64;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());
  {
    auto stream = (*pool)->CreateStream({}, {.weight = 0});
    VectorDataInterface di(archives_[0]);
    stream->SetInterval(0, 4102444800);
    stream->SetDataInterface(&di);
    Status st = stream->Start();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(),
              "Options::tenant_weight must be >= 1 (a zero-weight tenant "
              "would never be dispatched)");
  }
  {
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.idle_reclaim_rounds = 10;  // whole-file mode: nothing to reclaim
    BgpStream stream(std::move(opt));
    VectorDataInterface di(archives_[0]);
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    Status st = stream.Start();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(),
              "Options::idle_reclaim_rounds requires max_records_in_flight "
              "> 0 (only chunked-decode buffers can be reclaimed)");
  }
}

TEST(StreamPoolCreateTest, RejectsZeroKnobsWithExactMessages) {
  {
    auto pool = StreamPool::Create({.threads = 0});
    ASSERT_FALSE(pool.ok());
    EXPECT_EQ(pool.status().message(), "StreamPool requires threads > 0");
  }
  {
    auto pool = StreamPool::Create({.threads = 2, .record_budget = 0});
    ASSERT_FALSE(pool.ok());
    EXPECT_EQ(pool.status().message(),
              "StreamPool requires record_budget > 0");
  }
  {
    auto pool = StreamPool::Create(
        {.threads = 2, .record_budget = 64, .prefetch_subsets = 0});
    ASSERT_FALSE(pool.ok());
    EXPECT_EQ(pool.status().message(),
              "StreamPool requires prefetch_subsets > 0 (vended streams "
              "decode on the shared pool)");
  }
}

}  // namespace
}  // namespace bgps
