// Stress layer (ctest label: stress): a simulator-generated ~50k-record
// multi-file corpus pushed through a shared 4-tenant StreamPool under a
// tight record budget, checked fingerprint-for-fingerprint against the
// synchronous private pipeline, with the governor ledger balancing to
// zero. This is the scale the unit suite cannot afford on every run;
// CI runs it as a separate non-gating job.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <tuple>

#include "broker/archive.hpp"
#include "pool/stream_pool.hpp"
#include "sim/corpus.hpp"

namespace bgps {
namespace {

using broker::DumpFileMeta;
using core::BgpStream;

using RecordFp = std::tuple<Timestamp, std::string, int, int, int>;
using ElemFp = std::tuple<int, Timestamp, uint32_t, std::string, std::string>;

struct StreamRun {
  std::vector<RecordFp> records;
  std::vector<ElemFp> elems;
  Status status;
};

StreamRun Drain(BgpStream& stream) {
  StreamRun out;
  while (auto rec = stream.NextRecord()) {
    out.records.emplace_back(rec->timestamp, rec->collector,
                             int(rec->dump_type), int(rec->status),
                             int(rec->position));
    for (const auto& e : stream.Elems(*rec)) {
      out.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                             e.has_prefix() ? e.prefix.ToString() : "-",
                             e.as_path.ToString());
    }
  }
  out.status = stream.status();
  return out;
}

class VectorDataInterface : public core::DataInterface {
 public:
  explicit VectorDataInterface(std::vector<DumpFileMeta> files)
      : files_(std::move(files)) {}
  core::DataBatch NextBatch(const core::FilterSet&) override {
    core::DataBatch batch;
    if (!served_) {
      batch.files = files_;
      served_ = true;
    } else {
      batch.end_of_stream = true;
    }
    return batch;
  }

 private:
  std::vector<DumpFileMeta> files_;
  bool served_ = false;
};

// The generated corpus and its sync-path reference fingerprint, built
// once per process — generation plus the reference drain are the
// expensive part, and every test compares against the same bytes.
struct Corpus {
  std::string root;
  std::vector<DumpFileMeta> files;
  StreamRun reference;
};

const Corpus& GetCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus;
    c->root = (std::filesystem::temp_directory_path() /
               ("bgps_stress_corpus_" + std::to_string(::getpid()))).string();

    sim::CorpusOptions options;
    options.scenario = "mixed";
    options.duration = 2 * 3600;
    options.flaps_per_hour = 2600;  // sized to clear 50k records total
    options.seed = 7;
    auto stats = sim::GenerateCorpus(options, c->root);
    if (!stats.ok()) {
      ADD_FAILURE() << "corpus generation failed: "
                    << stats.status().ToString();
      return c;
    }

    broker::ArchiveIndex index(c->root);
    if (!index.Rescan().ok()) {
      ADD_FAILURE() << "corpus rescan failed";
      return c;
    }
    c->files = index.files();

    // Sync reference: the PR-2 private pipeline shape.
    BgpStream::Options opt;
    opt.prefetch_subsets = 2;
    opt.decode_threads = 1;
    opt.extract_elems_in_workers = true;
    opt.max_records_in_flight = 64;
    BgpStream stream(std::move(opt));
    VectorDataInterface di(c->files);
    stream.SetInterval(0, 4102444800);
    stream.SetDataInterface(&di);
    if (!stream.Start().ok()) {
      ADD_FAILURE() << "reference stream failed to start";
      return c;
    }
    c->reference = Drain(stream);
    return c;
  }();
  return *corpus;
}

class CorpusCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(GetCorpus().root, ec);
  }
};
const auto* const kCleanup =
    ::testing::AddGlobalTestEnvironment(new CorpusCleanup);

class StreamStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(GetCorpus().files.empty());
    ASSERT_TRUE(GetCorpus().reference.status.ok());
  }

  StreamRun RunTenant(std::unique_ptr<BgpStream> stream) {
    VectorDataInterface di(GetCorpus().files);
    stream->SetInterval(0, 4102444800);
    stream->SetDataInterface(&di);
    EXPECT_TRUE(stream->Start().ok());
    return Drain(*stream);
  }
};

TEST_F(StreamStressTest, CorpusClearsTheFiftyThousandRecordBar) {
  const Corpus& corpus = GetCorpus();
  EXPECT_GE(corpus.reference.records.size(), 50000u)
      << "corpus undersized — raise duration or flaps_per_hour";
  EXPECT_GT(corpus.files.size(), 10u) << "expected a multi-file archive";
  // Updates plus at least one RIB dump per collector.
  size_t ribs = 0;
  for (const auto& f : corpus.files)
    if (f.type == broker::DumpType::Rib) ++ribs;
  EXPECT_GE(ribs, 2u);
}

TEST_F(StreamStressTest, FourTenantsTightBudgetMatchTheSyncPath) {
  const Corpus& corpus = GetCorpus();

  constexpr size_t kBudget = 256;  // far below 4 tenants' combined appetite
  StreamPool::Options popt;
  popt.threads = 4;
  popt.record_budget = kBudget;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  constexpr int kTenants = 4;
  std::vector<StreamRun> got(kTenants);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < kTenants; ++t) {
      consumers.emplace_back([&, t] {
        BgpStream::Options opt;
        opt.extract_elems_in_workers = true;
        StreamPool::TenantOptions topt;
        topt.weight = size_t(t) + 1;  // asymmetric service rates
        topt.name = "stress-" + std::to_string(t);
        got[size_t(t)] =
            RunTenant((*pool)->CreateStream(std::move(opt), topt));
      });
    }
    for (auto& c : consumers) c.join();
  }

  for (int t = 0; t < kTenants; ++t) {
    // Full fingerprint equality: same records, same order, same elems —
    // scheduling weight and budget contention must never reorder or
    // drop a tenant's output.
    EXPECT_EQ(got[size_t(t)].records, corpus.reference.records)
        << "tenant " << t;
    EXPECT_EQ(got[size_t(t)].elems, corpus.reference.elems) << "tenant " << t;
    EXPECT_TRUE(got[size_t(t)].status.ok()) << "tenant " << t;
  }
  EXPECT_GT((*pool)->max_records_in_use(), 0u);
  EXPECT_LE((*pool)->max_records_in_use(), kBudget);
  // Everything drained and released: the governor ledger balances to 0.
  EXPECT_EQ((*pool)->records_in_use(), 0u);
}

TEST_F(StreamStressTest, PausedTenantIsReclaimedUnderCorpusLoadThenResumes) {
  const Corpus& corpus = GetCorpus();

  StreamPool::Options popt;
  popt.threads = 3;
  popt.record_budget = 128;
  auto pool = StreamPool::Create(popt);
  ASSERT_TRUE(pool.ok());

  // The victim: drains a little, then parks with its buffers loaded.
  BgpStream::Options vopt;
  vopt.extract_elems_in_workers = true;
  auto victim = (*pool)->CreateStream(
      vopt, {.weight = 1, .name = "parked", .idle_reclaim_rounds = 10});
  VectorDataInterface vdi(corpus.files);
  victim->SetInterval(0, 4102444800);
  victim->SetDataInterface(&vdi);
  ASSERT_TRUE(victim->Start().ok());

  StreamRun parked;
  constexpr size_t kBeforePause = 100;
  for (size_t i = 0; i < kBeforePause; ++i) {
    auto rec = victim->NextRecord();
    ASSERT_TRUE(rec.has_value());
    parked.records.emplace_back(rec->timestamp, rec->collector,
                                int(rec->dump_type), int(rec->status),
                                int(rec->position));
    for (const auto& e : victim->Elems(*rec)) {
      parked.elems.emplace_back(int(e.type), e.time, e.peer_asn,
                                e.has_prefix() ? e.prefix.ToString() : "-",
                                e.as_path.ToString());
    }
  }
  // Let the workers load the victim's buffers before the rivals start.
  auto until = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (victim->stats().records_buffered < 10 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(victim->stats().records_buffered, 10u);

  // Two rivals drain the whole corpus while the victim sleeps; their
  // budget demand drives the contention hook, which must reclaim the
  // parked tenant's buffers instead of starving the rivals.
  std::vector<StreamRun> rivals(2);
  {
    std::vector<std::thread> consumers;
    for (int t = 0; t < 2; ++t) {
      consumers.emplace_back([&, t] {
        BgpStream::Options opt;
        opt.extract_elems_in_workers = true;
        StreamPool::TenantOptions topt;
        topt.weight = 2;
        topt.name = "rival-" + std::to_string(t);
        rivals[size_t(t)] =
            RunTenant((*pool)->CreateStream(std::move(opt), topt));
      });
    }
    for (auto& c : consumers) c.join();
  }
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(rivals[size_t(t)].records, corpus.reference.records)
        << "rival " << t;
    EXPECT_TRUE(rivals[size_t(t)].status.ok()) << "rival " << t;
  }
  EXPECT_GT(victim->stats().reclaims, 0u)
      << "corpus-scale contention never reclaimed the parked tenant";

  // The parked tenant resumes and its total output is still exactly the
  // sync-path fingerprint — reclaim must be invisible in the stream.
  StreamRun rest = Drain(*victim);
  ASSERT_TRUE(rest.status.ok());
  parked.records.insert(parked.records.end(), rest.records.begin(),
                        rest.records.end());
  parked.elems.insert(parked.elems.end(), rest.elems.begin(),
                      rest.elems.end());
  EXPECT_EQ(parked.records, corpus.reference.records);
  EXPECT_EQ(parked.elems, corpus.reference.elems);

  victim.reset();
  EXPECT_EQ((*pool)->records_in_use(), 0u);
}

}  // namespace
}  // namespace bgps
