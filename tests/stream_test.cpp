// End-to-end tests of the stream engine over a simulated archive:
// simulator -> MRT files -> broker -> multi-way merge -> records/elems.
#include <gtest/gtest.h>

#include <fstream>

#include "core/stream.hpp"
#include "reader/ascii.hpp"
#include "tests/sim_fixture.hpp"

namespace bgps::core {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& a = testutil::GetSmallArchive();
    root_ = a.root;
    start_ = a.start;
    end_ = a.end;
    broker::Broker::Options opt;
    opt.clock = [] { return Timestamp(4102444800); };
    broker_ = std::make_unique<broker::Broker>(root_, opt);
    di_ = std::make_unique<BrokerDataInterface>(broker_.get());
  }

  std::string root_;
  Timestamp start_ = 0, end_ = 0;
  std::unique_ptr<broker::Broker> broker_;
  std::unique_ptr<BrokerDataInterface> di_;
};

TEST_F(StreamTest, SortedStreamAcrossCollectorsAndTypes) {
  BgpStream stream;
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());

  size_t records = 0;
  Timestamp last_in_subset = 0;
  std::set<std::pair<std::string, std::string>> provenance;
  size_t subsets_before = 0;
  while (auto rec = stream.NextRecord()) {
    // Timestamps are monotone within a merged subset; track subset
    // changes via the stream stats.
    if (stream.subsets_merged() != subsets_before) {
      subsets_before = stream.subsets_merged();
      last_in_subset = 0;
    }
    EXPECT_GE(rec->timestamp, last_in_subset);
    last_in_subset = rec->timestamp;
    provenance.insert({rec->project, rec->collector});
    ++records;
  }
  EXPECT_GT(records, 100u);
  EXPECT_EQ(provenance.size(), 2u);  // both collectors contributed
}

TEST_F(StreamTest, ElemsAreExtractedFromRibAndUpdates) {
  BgpStream stream;
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());
  size_t rib_elems = 0, ann = 0, wd = 0, state = 0;
  while (auto rec = stream.NextRecord()) {
    for (const auto& e : stream.Elems(*rec)) {
      switch (e.type) {
        case ElemType::RibEntry: ++rib_elems; break;
        case ElemType::Announcement: ++ann; break;
        case ElemType::Withdrawal: ++wd; break;
        case ElemType::PeerState: ++state; break;
      }
    }
  }
  EXPECT_GT(rib_elems, 100u);  // two RIB dumps of a whole table
  EXPECT_GT(ann, 10u);         // flap re-announcements
  EXPECT_GT(wd, 10u);          // flap withdrawals
  (void)state;
}

TEST_F(StreamTest, CollectorFilterRestrictsProvenance) {
  BgpStream stream;
  ASSERT_TRUE(stream.AddFilter("collector", "rrc00").ok());
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());
  size_t n = 0;
  while (auto rec = stream.NextRecord()) {
    EXPECT_EQ(rec->collector, "rrc00");
    ++n;
  }
  EXPECT_GT(n, 0u);
}

TEST_F(StreamTest, TypeFilterSelectsRibsOnly) {
  BgpStream stream;
  ASSERT_TRUE(stream.AddFilter("type", "ribs").ok());
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());
  size_t n = 0;
  bool saw_start = false, saw_end = false;
  while (auto rec = stream.NextRecord()) {
    EXPECT_EQ(rec->dump_type, DumpType::Rib);
    saw_start |= rec->position == DumpPosition::Start;
    saw_end |= rec->position == DumpPosition::End;
    ++n;
  }
  EXPECT_GT(n, 0u);
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
}

TEST_F(StreamTest, UpdateRecordsRespectInterval) {
  BgpStream stream;
  ASSERT_TRUE(stream.AddFilter("type", "updates").ok());
  stream.SetInterval(start_ + 600, start_ + 1200);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());
  while (auto rec = stream.NextRecord()) {
    if (rec->status != RecordStatus::Valid) continue;
    EXPECT_GE(rec->timestamp, start_ + 600);
    EXPECT_LT(rec->timestamp, start_ + 1200);
  }
}

TEST_F(StreamTest, SingleFileInterface) {
  // Grab one updates file from the archive via the broker index.
  const broker::DumpFileMeta* meta = nullptr;
  for (const auto& f : broker_->index().files()) {
    if (f.type == DumpType::Updates && f.collector == "rrc00") {
      meta = &f;
      break;
    }
  }
  ASSERT_NE(meta, nullptr);
  SingleFileInterface sfi(meta->path, DumpType::Updates);
  BgpStream stream;
  stream.SetInterval(0, 4102444800);  // wide open
  stream.SetDataInterface(&sfi);
  ASSERT_TRUE(stream.Start().ok());
  size_t n = 0;
  while (auto rec = stream.NextRecord()) {
    EXPECT_EQ(rec->project, "singlefile");
    ++n;
  }
  // The file may be empty (quiet window) but the stream must terminate.
  SUCCEED();
}

TEST_F(StreamTest, CsvInterface) {
  // Build a CSV index of the rrc00 updates files.
  std::string csv_path = root_ + "/index.csv";
  {
    std::ofstream out(csv_path);
    out << "# test index\n";
    for (const auto& f : broker_->index().files()) {
      if (f.collector != "rrc00") continue;
      out << f.project << "," << f.collector << ","
          << broker::DumpTypeName(f.type) << "," << f.start << ","
          << f.duration << "," << f.path << "\n";
    }
  }
  CsvFileInterface csv(csv_path);
  ASSERT_TRUE(csv.status().ok());
  BgpStream stream;
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(&csv);
  ASSERT_TRUE(stream.Start().ok());
  size_t n = 0;
  while (auto rec = stream.NextRecord()) {
    EXPECT_EQ(rec->collector, "rrc00");
    ++n;
  }
  EXPECT_GT(n, 0u);
}

TEST_F(StreamTest, LiveModePollsAndTerminatesOnCap) {
  // Virtual clock stuck just after start: most dumps unpublished.
  Timestamp now = start_ + 301;
  broker::Broker::Options opt;
  opt.clock = [&now] { return now; };
  broker::Broker live_broker(root_, opt);
  BrokerDataInterface live_di(&live_broker);

  BgpStream::Options sopt;
  size_t polls = 0;
  sopt.poll_wait = [&] {
    now += 300;  // each poll advances virtual time
    ++polls;
  };
  sopt.max_consecutive_polls = 500;
  BgpStream stream(sopt);
  stream.SetLive(start_);
  stream.SetDataInterface(&live_di);
  ASSERT_TRUE(stream.Start().ok());

  size_t records = 0;
  while (auto rec = stream.NextRecord()) {
    ++records;
    if (now > end_ + 3600) break;  // simulation archive is finite
  }
  EXPECT_GT(records, 0u);
  EXPECT_GT(polls, 0u);
}

TEST_F(StreamTest, BgpReaderProducesParseableLines) {
  BgpStream stream;
  ASSERT_TRUE(stream.AddFilter("type", "updates").ok());
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());

  std::ostringstream out;
  reader::BgpReaderOptions ropt;
  ropt.max_elems = 50;
  size_t printed = reader::RunBgpReader(stream, out, ropt);
  EXPECT_GT(printed, 0u);
  std::istringstream lines(out.str());
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    // Native format has 12 pipe-separated fields.
    EXPECT_GE(std::count(line.begin(), line.end(), '|'), 10) << line;
    ++count;
  }
  EXPECT_EQ(count, printed);
}

TEST_F(StreamTest, BgpdumpFormatMode) {
  BgpStream stream;
  ASSERT_TRUE(stream.AddFilter("type", "updates").ok());
  ASSERT_TRUE(stream.AddFilter("elemtype", "announcements").ok());
  stream.SetInterval(start_, end_);
  stream.SetDataInterface(di_.get());
  ASSERT_TRUE(stream.Start().ok());
  std::ostringstream out;
  reader::BgpReaderOptions ropt;
  ropt.format = reader::OutputFormat::Bgpdump;
  ropt.max_elems = 10;
  size_t printed = reader::RunBgpReader(stream, out, ropt);
  ASSERT_GT(printed, 0u);
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(line.rfind("BGP4MP|", 0) == 0) << line;
    EXPECT_NE(line.find("|A|"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace bgps::core
