#include <gtest/gtest.h>

#include "util/ip.hpp"

namespace bgps {
namespace {

TEST(IpAddress, ParseV4) {
  auto a = IpAddress::Parse("192.168.1.2");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->ToString(), "192.168.1.2");
  EXPECT_EQ(a->v4(), 0xC0A80102u);
}

TEST(IpAddress, ParseV4Invalid) {
  EXPECT_FALSE(IpAddress::Parse("256.0.0.1").ok());
  EXPECT_FALSE(IpAddress::Parse("1.2.3").ok());
  EXPECT_FALSE(IpAddress::Parse("1.2.3.4.5").ok());
  EXPECT_FALSE(IpAddress::Parse("a.b.c.d").ok());
  EXPECT_FALSE(IpAddress::Parse("").ok());
  EXPECT_FALSE(IpAddress::Parse("1..2.3").ok());
}

TEST(IpAddress, ParseV6Basic) {
  auto a = IpAddress::Parse("2001:db8::1");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->ToString(), "2001:db8::1");
}

TEST(IpAddress, ParseV6Full) {
  auto a = IpAddress::Parse("2001:0db8:0001:0002:0003:0004:0005:0006");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "2001:db8:1:2:3:4:5:6");
}

TEST(IpAddress, ParseV6AllZero) {
  auto a = IpAddress::Parse("::");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "::");
}

TEST(IpAddress, ParseV6TrailingGap) {
  auto a = IpAddress::Parse("2001:db8::");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "2001:db8::");
}

TEST(IpAddress, ParseV6LeadingGap) {
  auto a = IpAddress::Parse("::ffff:1:2");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "::ffff:1:2");
}

TEST(IpAddress, ParseV6Invalid) {
  EXPECT_FALSE(IpAddress::Parse("2001:db8:::1").ok());
  EXPECT_FALSE(IpAddress::Parse("1:2:3:4:5:6:7").ok());
  EXPECT_FALSE(IpAddress::Parse("1:2:3:4:5:6:7:8:9").ok());
  EXPECT_FALSE(IpAddress::Parse("2001::db8::1").ok());
  EXPECT_FALSE(IpAddress::Parse("zzzz::1").ok());
}

TEST(IpAddress, V6ZeroRunCompression) {
  // Longest zero run is compressed, single zero group is not.
  auto a = IpAddress::Parse("1:0:0:2:0:0:0:3");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "1:0:0:2::3");
}

TEST(IpAddress, BitAccess) {
  auto a = IpAddress::V4(0x80000001);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
}

TEST(IpAddress, Masked) {
  auto a = IpAddress::V4(192, 168, 255, 255);
  EXPECT_EQ(a.masked(16).ToString(), "192.168.0.0");
  EXPECT_EQ(a.masked(24).ToString(), "192.168.255.0");
  EXPECT_EQ(a.masked(0).ToString(), "0.0.0.0");
  EXPECT_EQ(a.masked(32).ToString(), "192.168.255.255");
  EXPECT_EQ(a.masked(17).ToString(), "192.168.128.0");
}

TEST(IpAddress, CommonPrefixLen) {
  auto a = IpAddress::V4(192, 168, 0, 0);
  auto b = IpAddress::V4(192, 168, 128, 0);
  EXPECT_EQ(a.common_prefix_len(b), 16);
  EXPECT_EQ(a.common_prefix_len(a), 32);
  auto c = IpAddress::V4(0, 0, 0, 0);
  auto d = IpAddress::V4(128, 0, 0, 0);
  EXPECT_EQ(c.common_prefix_len(d), 0);
}

TEST(IpAddress, OrderingV4BeforeV6) {
  auto v4 = IpAddress::V4(255, 255, 255, 255);
  auto v6 = *IpAddress::Parse("::1");
  EXPECT_TRUE(v4 < v6);
}

TEST(Prefix, ParseAndFormat) {
  auto p = Prefix::Parse("10.1.0.0/16");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "10.1.0.0/16");
  EXPECT_EQ(p->length(), 16);
}

TEST(Prefix, ParseMasksHostBits) {
  auto p = Prefix::Parse("10.1.2.3/16");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "10.1.0.0/16");
  // Equal prefixes written differently compare equal after masking.
  EXPECT_EQ(*p, *Prefix::Parse("10.1.255.255/16"));
}

TEST(Prefix, ParseInvalid) {
  EXPECT_FALSE(Prefix::Parse("10.0.0.0").ok());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/33").ok());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/-1").ok());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/abc").ok());
  EXPECT_FALSE(Prefix::Parse("2001:db8::/129").ok());
}

TEST(Prefix, ContainsAddress) {
  auto p = *Prefix::Parse("192.0.0.0/8");
  EXPECT_TRUE(p.contains(*IpAddress::Parse("192.168.1.1")));
  EXPECT_FALSE(p.contains(*IpAddress::Parse("193.0.0.1")));
  EXPECT_FALSE(p.contains(*IpAddress::Parse("2001:db8::1")));
}

TEST(Prefix, ContainsPrefix) {
  auto p8 = *Prefix::Parse("192.0.0.0/8");
  auto p16 = *Prefix::Parse("192.168.0.0/16");
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p8));
}

TEST(Prefix, Overlaps) {
  auto p8 = *Prefix::Parse("192.0.0.0/8");
  auto p16 = *Prefix::Parse("192.168.0.0/16");
  auto other = *Prefix::Parse("10.0.0.0/8");
  EXPECT_TRUE(p8.overlaps(p16));
  EXPECT_TRUE(p16.overlaps(p8));
  EXPECT_FALSE(p8.overlaps(other));
}

TEST(Prefix, V6Containment) {
  auto p32 = *Prefix::Parse("2001:db8::/32");
  auto p48 = *Prefix::Parse("2001:db8:1::/48");
  EXPECT_TRUE(p32.contains(p48));
  EXPECT_FALSE(p48.contains(p32));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  auto def = *Prefix::Parse("0.0.0.0/0");
  EXPECT_TRUE(def.contains(*Prefix::Parse("1.2.3.4/32")));
  EXPECT_TRUE(def.contains(*IpAddress::Parse("255.255.255.255")));
}

TEST(Prefix, HostPrefix) {
  auto host = *Prefix::Parse("1.2.3.4/32");
  EXPECT_TRUE(host.contains(*IpAddress::Parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(*IpAddress::Parse("1.2.3.5")));
}

TEST(Prefix, HashEqualForEqualPrefixes) {
  auto a = *Prefix::Parse("10.1.2.3/16");
  auto b = *Prefix::Parse("10.1.0.0/16");
  EXPECT_EQ(a.hash(), b.hash());
}

// Property sweep: parse(ToString(p)) == p across lengths and families.
class PrefixRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrefixRoundTrip, V4) {
  int len = GetParam();
  if (len > 32) return;
  Prefix p(IpAddress::V4(0xC0A80000u | 0xFFFF), len);
  auto q = Prefix::Parse(p.ToString());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, p);
}

TEST_P(PrefixRoundTrip, V6) {
  int len = GetParam() * 4;  // 0..128
  std::array<uint8_t, 16> b{};
  for (int i = 0; i < 16; ++i) b[size_t(i)] = uint8_t(0x11 * (i + 1));
  Prefix p(IpAddress::V6(b), len);
  auto q = Prefix::Parse(p.ToString());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, p);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixRoundTrip, ::testing::Range(0, 33));

}  // namespace
}  // namespace bgps
