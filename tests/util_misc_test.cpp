#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace bgps {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::Ok);
}

TEST(Status, ToStringIncludesMessage) {
  Status s = CorruptError("bad attribute");
  EXPECT_EQ(s.ToString(), "CORRUPT: bad attribute");
  EXPECT_EQ(Status().ToString(), "OK");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::NotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(BufReader, BigEndianReads) {
  Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  BufReader r(data);
  EXPECT_EQ(r.u16().value(), 0x0102);
  EXPECT_EQ(r.u32().value(), 0x03040506u);
  EXPECT_EQ(r.u8().value(), 0x07);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(BufReader, U64) {
  Bytes data = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04};
  BufReader r(data);
  EXPECT_EQ(r.u64().value(), 0xDEADBEEF01020304ull);
}

TEST(BufReader, OutOfRange) {
  Bytes data = {0x01};
  BufReader r(data);
  EXPECT_FALSE(r.u16().ok());
  EXPECT_EQ(r.u16().status().code(), StatusCode::OutOfRange);
  // Failed read does not consume.
  EXPECT_EQ(r.u8().value(), 0x01);
}

TEST(BufReader, SubReaderIsolation) {
  Bytes data = {0x01, 0x02, 0x03, 0x04};
  BufReader r(data);
  auto sub = r.sub(2);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->u16().value(), 0x0102);
  EXPECT_FALSE(sub->u8().ok());   // sub is bounded
  EXPECT_EQ(r.u16().value(), 0x0304);  // parent advanced past sub
}

TEST(BufReader, SkipAndView) {
  Bytes data = {1, 2, 3, 4, 5};
  BufReader r(data);
  EXPECT_TRUE(r.skip(2).ok());
  auto v = r.view(2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)[0], 3);
  EXPECT_FALSE(r.skip(2).ok());
}

TEST(BufWriter, RoundTrip) {
  BufWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  BufReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0102030405060708ull);
}

TEST(BufWriter, Patch) {
  BufWriter w;
  w.u16(0);
  w.u32(0);
  w.patch_u16(0, 0xBEEF);
  w.patch_u32(2, 0x12345678);
  BufReader r(w.data());
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0x12345678u);
}

TEST(Time, CivilRoundTrip) {
  // 2016-03-15 00:00:00 UTC = 1458000000.
  Timestamp ts = 1458000000;
  CivilTime c = CivilFromTimestamp(ts);
  EXPECT_EQ(c.year, 2016);
  EXPECT_EQ(c.month, 3);
  EXPECT_EQ(c.day, 15);
  EXPECT_EQ(TimestampFromCivil(c), ts);
}

TEST(Time, KnownEpochs) {
  EXPECT_EQ(TimestampFromYmdHms(1970, 1, 1, 0, 0, 0), 0);
  EXPECT_EQ(TimestampFromYmdHms(2001, 1, 15, 0, 0, 0), 979516800);
  EXPECT_EQ(TimestampFromYmdHms(2016, 1, 15, 0, 0, 0), 1452816000);
  // Leap year boundary.
  EXPECT_EQ(TimestampFromYmdHms(2016, 2, 29, 0, 0, 0),
            TimestampFromYmdHms(2016, 2, 28, 0, 0, 0) + 86400);
}

TEST(Time, Format) {
  EXPECT_EQ(FormatTimestamp(TimestampFromYmdHms(2015, 1, 7, 12, 30, 5)),
            "2015-01-07 12:30:05");
}

// Property sweep: civil <-> timestamp round-trips across months/years.
class CivilRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CivilRoundTrip, MonthMidnights) {
  int month_index = GetParam();
  int year = 2001 + month_index / 12;
  int month = 1 + month_index % 12;
  Timestamp ts = TimestampFromYmdHms(year, month, 15, 0, 0, 0);
  CivilTime c = CivilFromTimestamp(ts);
  EXPECT_EQ(c.year, year);
  EXPECT_EQ(c.month, month);
  EXPECT_EQ(c.day, 15);
  EXPECT_EQ(c.hour, 0);
  EXPECT_EQ(TimestampFromCivil(c), ts);
}

INSTANTIATE_TEST_SUITE_P(FifteenYears, CivilRoundTrip,
                         ::testing::Range(0, 15 * 12));

TEST(Time, IntervalContains) {
  TimeInterval iv{100, 200};
  EXPECT_TRUE(iv.contains(100));
  EXPECT_TRUE(iv.contains(199));
  EXPECT_FALSE(iv.contains(200));
  EXPECT_FALSE(iv.contains(99));
}

TEST(Time, LiveInterval) {
  TimeInterval live{100, kLiveEnd};
  EXPECT_TRUE(live.live());
  EXPECT_TRUE(live.contains(1 << 30));
  EXPECT_FALSE(live.contains(99));
  EXPECT_TRUE(live.overlaps(50, 150));
  EXPECT_FALSE(live.overlaps(50, 100));
}

TEST(Time, IntervalOverlaps) {
  TimeInterval iv{100, 200};
  EXPECT_TRUE(iv.overlaps(150, 250));
  EXPECT_TRUE(iv.overlaps(50, 101));
  EXPECT_FALSE(iv.overlaps(200, 300));
  EXPECT_FALSE(iv.overlaps(50, 100));
}

TEST(Time, AlignToBin) {
  EXPECT_EQ(AlignToBin(1458000123, 60), 1458000120);
  EXPECT_EQ(AlignToBin(1458000120, 60), 1458000120);
}

TEST(Strings, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  auto dense = SplitSkipEmpty("a,b,,c", ',');
  ASSERT_EQ(dense.size(), 3u);
}

TEST(Strings, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "|"), "a|b|c");
  EXPECT_EQ(JoinStrings({}, "|"), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("routeviews", "route"));
  EXPECT_FALSE(StartsWith("route", "routeviews"));
}

}  // namespace
}  // namespace bgps
