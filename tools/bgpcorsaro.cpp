// bgpcorsaro — command-line BGPCorsaro runner (paper §6.1).
//
// Drives a plugin pipeline over an archive in regular time bins:
//     bgpcorsaro -d ARCHIVE -w START,END -b 300 -x moas -x rt
//     bgpcorsaro -d ARCHIVE -w START,END -x pfxmonitor:193.206.0.0/16
// Each plugin prints its per-bin output; `rt` reports per-bin elem/diff
// counts (the Fig. 9 quantities) plus final accuracy counters.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>

#include "core/executor.hpp"
#include "corsaro/corsaro.hpp"
#include "corsaro/moas.hpp"
#include "corsaro/pfxmonitor.hpp"
#include "corsaro/rt.hpp"
#include "util/strings.hpp"

using namespace bgps;

namespace {

void Usage() {
  std::fprintf(stderr, R"(usage: bgpcorsaro -d ARCHIVE -w START,END [options]

  -d DIR          archive root (Broker layout)
  -w START,END    UNIX-time window
  -b SECONDS      bin size (default 300)
  -c COLLECTOR    collector filter (repeatable)
  -x PLUGIN       plugin chain, in order (repeatable):
                    pfxmonitor:PFX[,PFX...]  monitor address ranges (Fig. 6)
                    moas                     live MOAS/hijack events
                    rt                       routing-tables plugin (Fig. 9)
                    rt:shards=N[,threads=M]  sharded RT apply on an M-thread
                                             pool (default 4); output is
                                             identical at any shard count
)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string archive;
  Timestamp start = 0, end = 0, bin = 300;
  core::BgpStream stream;
  std::vector<std::string> plugin_specs;

  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "bgpcorsaro: %s\n", msg.c_str());
    Usage();
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-d") {
      const char* v = need_value();
      if (!v) return fail("-d needs a directory");
      archive = v;
    } else if (arg == "-w") {
      const char* v = need_value();
      if (!v) return fail("-w needs START,END");
      char* rest = nullptr;
      start = std::strtoll(v, &rest, 10);
      if (!rest || *rest != ',') return fail("-w needs START,END");
      end = std::strtoll(rest + 1, nullptr, 10);
    } else if (arg == "-b") {
      const char* v = need_value();
      if (!v) return fail("-b needs seconds");
      bin = std::strtoll(v, nullptr, 10);
    } else if (arg == "-c") {
      const char* v = need_value();
      if (!v) return fail("-c needs a collector");
      if (Status st = stream.AddFilter("collector", v); !st.ok())
        return fail(st.ToString());
    } else if (arg == "-x") {
      const char* v = need_value();
      if (!v) return fail("-x needs a plugin spec");
      plugin_specs.push_back(v);
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      return fail("unknown option " + arg);
    }
  }
  if (archive.empty() || end <= start)
    return fail("-d and a valid -w START,END are required");
  if (plugin_specs.empty()) plugin_specs.push_back("rt");

  broker::Broker broker(archive);
  core::BrokerDataInterface di(&broker);
  stream.SetInterval(start, end);
  stream.SetDataInterface(&di);
  if (Status st = stream.Start(); !st.ok()) return fail(st.ToString());

  // Declared before the engine: the engine owns the plugins, so it (and
  // the sharded RT plugin's strands) must be destroyed before the pool.
  std::unique_ptr<core::Executor> executor;
  corsaro::BgpCorsaro engine(&stream, bin);
  corsaro::RoutingTables* rt_plugin = nullptr;

  for (const auto& spec : plugin_specs) {
    size_t colon = spec.find(':');
    std::string name = spec.substr(0, colon);
    std::string args =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (name == "pfxmonitor") {
      std::vector<Prefix> ranges;
      for (const auto& tok : SplitSkipEmpty(args, ',')) {
        auto p = Prefix::Parse(tok);
        if (!p.ok()) return fail("bad pfxmonitor prefix: " + tok);
        ranges.push_back(*p);
      }
      if (ranges.empty()) return fail("pfxmonitor needs prefixes");
      engine.AddPlugin(std::make_unique<corsaro::PfxMonitor>(
          ranges, [](const corsaro::PfxMonitor::BinRow& row) {
            std::printf("pfxmonitor|%lld|%zu|%zu\n",
                        (long long)row.bin_start, row.unique_prefixes,
                        row.unique_origins);
          }));
    } else if (name == "moas") {
      engine.AddPlugin(std::make_unique<corsaro::MoasDetector>(
          [](const corsaro::MoasEvent& ev) {
            std::string origins;
            for (bgp::Asn asn : ev.origins) {
              if (!origins.empty()) origins += ' ';
              origins += std::to_string(asn);
            }
            std::printf("moas|%lld|%s|%s|%s\n", (long long)ev.time,
                        ev.started ? "START" : "END",
                        ev.prefix.ToString().c_str(), origins.c_str());
          }));
    } else if (name == "rt") {
      corsaro::RoutingTables::Options rt_opt;
      size_t pool_threads = 4;
      for (const auto& tok : SplitSkipEmpty(args, ',')) {
        if (tok.rfind("shards=", 0) == 0) {
          rt_opt.shards = std::strtoull(tok.c_str() + 7, nullptr, 10);
          if (rt_opt.shards == 0) return fail("rt shards must be >= 1");
        } else if (tok.rfind("threads=", 0) == 0) {
          pool_threads = std::strtoull(tok.c_str() + 8, nullptr, 10);
          if (pool_threads == 0) return fail("rt threads must be >= 1");
        } else {
          return fail("unknown rt option: " + tok);
        }
      }
      if (rt_opt.shards > 1) {
        if (!executor)
          executor = std::make_unique<core::Executor>(
              core::Executor::Options{.threads = pool_threads});
        rt_opt.executor = executor.get();
      }
      auto rt = std::make_unique<corsaro::RoutingTables>(rt_opt);
      rt_plugin = rt.get();
      rt->set_diff_callback(
          [](Timestamp bin_start, const std::vector<corsaro::DiffCell>& diffs) {
            std::printf("rt|%lld|diff-cells=%zu\n", (long long)bin_start,
                        diffs.size());
          });
      engine.AddPlugin(std::move(rt));
    } else {
      return fail("unknown plugin " + name);
    }
  }

  size_t records = engine.Run();
  std::fprintf(stderr, "bgpcorsaro: processed %zu records in %lld-second bins\n",
               records, (long long)bin);
  if (rt_plugin) {
    std::fprintf(stderr,
                 "bgpcorsaro: rt accuracy: %zu mismatches / %zu compared\n",
                 rt_plugin->rib_mismatches(), rt_plugin->rib_compared_prefixes());
    auto shard_stats = rt_plugin->shard_stats();
    if (shard_stats.size() > 1) {
      for (size_t i = 0; i < shard_stats.size(); ++i) {
        std::fprintf(stderr,
                     "bgpcorsaro: rt shard %zu: vps=%zu elems=%zu batches=%zu\n",
                     i, shard_stats[i].vps, shard_stats[i].applied_elems,
                     shard_stats[i].batches);
      }
    }
  }
  return 0;
}
