// bgpfanout — record-plane fan-out daemon (paper §6.1 deployment).
//
// Runs the decode pipeline over an MRT archive exactly once — a
// StreamPool-vended stream with full elem extraction — publishes the
// records as batches into an embedded message-queue cluster, and
// serves any number of TCP subscribers from those logs:
//     bgpfanout -d /tmp/archive --listen 6447 --retain-messages 64
//     printf 'FILTER collector rrc00\nGO\n' | nc 127.0.0.1 6447
// Every subscriber replays/tails the same decoded stream with its own
// filters evaluated at fan-out, byte-identical to a direct bgpreader
// run with those filters — the cost of N consumers is N socket writes,
// not N MRT decodes. A periodic StreamPool stats snapshot is published
// to the "stats" topic (one JSON object per snapshot); clients fetch
// the latest with the STATS command.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "broker/broker.hpp"
#include "core/data_interface.hpp"
#include "pool/fanout_server.hpp"
#include "pool/record_fanout.hpp"
#include "pool/stream_pool.hpp"

using namespace bgps;

namespace {

void Usage() {
  std::fputs(R"(usage: bgpfanout -d DIR [options]

archive:
  -d DIR          MRT archive root, served through the embedded broker
  -w START,END    publish window in UNIX seconds (default: everything)

service:
  --listen PORT   TCP port to bind on 127.0.0.1 (default 0 = pick an
                  ephemeral port; the bound port is printed to stderr)
  --once          exit once the archive is fully published (default:
                  keep serving subscribers until SIGINT/SIGTERM)

decode:
  --threads N     decode worker threads (default 4)
  --budget N      record-budget ledger shared by decode buffers and,
                  with bounded retention, unconsumed published batches
                  (default 4096)

fan-out:
  --batch-records N
                  records per published batch (default 64; must be
                  <= --budget when retention is bounded)
  --retain-messages N
                  per-collector log retention, in batches; 0 keeps the
                  full history in memory (default 0)
  --retain-bytes N
                  per-collector log retention, in payload bytes
                  (default 0 = unbounded)
  --stats-interval S
                  seconds between pool stats snapshots on the "stats"
                  topic (default 5; 0 disables)

With bounded retention (--retain-messages / --retain-bytes) published
batches lease record slots from the shared --budget ledger until they
fall out of retention, so a subscriber that pins its replay cursor
backpressures publication instead of growing memory. With unbounded
retention the full decoded history is kept (and the ledger only governs
decode), so bound the window with -w.
)",
             stderr);
}

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One pool snapshot as a single-line JSON object — same section names
// as bgpreader --pool-stats-json, so one scraper handles both.
std::string SnapshotJson(const StreamPool::Snapshot& snap) {
  std::string buf;
  buf += "{\"executor\":{\"threads\":" +
         std::to_string(snap.executor.threads) +
         ",\"tasks_run\":" + std::to_string(snap.executor.tasks_run) +
         ",\"dispatch_rounds\":" +
         std::to_string(snap.executor.dispatch_rounds) +
         ",\"tenants\":" + std::to_string(snap.executor.tenants) + "}";
  buf += ",\"governor\":{\"capacity\":" +
         std::to_string(snap.governor.capacity) +
         ",\"in_use\":" + std::to_string(snap.governor.in_use) +
         ",\"max_in_use\":" + std::to_string(snap.governor.max_in_use) +
         ",\"waiting\":" + std::to_string(snap.governor.waiting) + "}";
  buf += ",\"streams_created\":" + std::to_string(snap.streams_created);
  buf += ",\"tenants\":[";
  for (size_t i = 0; i < snap.tenants.size(); ++i) {
    const auto& t = snap.tenants[i];
    if (i > 0) buf += ",";
    buf += "{\"name\":\"" + JsonEscape(t.name) + "\"";
    buf += ",\"records_emitted\":" +
           std::to_string(t.stats.records_emitted);
    buf += ",\"records_buffered\":" +
           std::to_string(t.stats.records_buffered);
    buf += ",\"files_decoded\":" + std::to_string(t.stats.files_decoded) +
           "}";
  }
  buf += "]}";
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string archive;
  Timestamp window_start = 0;
  Timestamp window_end = 4102444800;  // 2100-01-01: effectively everything
  uint16_t listen_port = 0;
  bool once = false;
  size_t threads = 4;
  size_t budget = 4096;
  size_t batch_records = 64;
  mq::RetentionOptions retention;
  long long stats_interval = 5;

  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "bgpfanout: %s\n", msg.c_str());
    Usage();
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "-d") {
      const char* v = need_value();
      if (!v) return fail("-d needs a directory");
      archive = v;
    } else if (arg == "-w") {
      const char* v = need_value();
      if (!v) return fail("-w needs START,END");
      char* rest = nullptr;
      window_start = std::strtoll(v, &rest, 10);
      if (!rest || *rest != ',') return fail("-w needs START,END");
      window_end = std::strtoll(rest + 1, nullptr, 10);
      if (window_end <= window_start)
        return fail("-w window must have END > START");
    } else if (arg == "--listen") {
      const char* v = need_value();
      if (!v) return fail("--listen needs a port");
      long p = std::strtol(v, nullptr, 10);
      if (p < 0 || p > 65535) return fail("--listen port out of range");
      listen_port = uint16_t(p);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--threads") {
      const char* v = need_value();
      if (!v) return fail("--threads needs a count");
      threads = std::strtoull(v, nullptr, 10);
      if (threads == 0) return fail("--threads must be > 0");
    } else if (arg == "--budget") {
      const char* v = need_value();
      if (!v) return fail("--budget needs a record count");
      budget = std::strtoull(v, nullptr, 10);
      if (budget == 0) return fail("--budget must be > 0");
    } else if (arg == "--batch-records") {
      const char* v = need_value();
      if (!v) return fail("--batch-records needs a count");
      batch_records = std::strtoull(v, nullptr, 10);
      if (batch_records == 0) return fail("--batch-records must be > 0");
    } else if (arg == "--retain-messages") {
      const char* v = need_value();
      if (!v) return fail("--retain-messages needs a count");
      retention.max_messages = std::strtoull(v, nullptr, 10);
    } else if (arg == "--retain-bytes") {
      const char* v = need_value();
      if (!v) return fail("--retain-bytes needs a byte count");
      retention.max_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--stats-interval") {
      const char* v = need_value();
      if (!v) return fail("--stats-interval needs seconds");
      stats_interval = std::strtoll(v, nullptr, 10);
      if (stats_interval < 0) return fail("--stats-interval must be >= 0");
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      return fail("unknown option " + arg);
    }
  }

  if (archive.empty()) return fail("-d is required");
  const bool bounded =
      retention.max_messages != 0 || retention.max_bytes != 0;
  if (bounded && batch_records > budget)
    return fail("--batch-records must be <= --budget "
                "(a batch leases one slot per record)");

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  auto pool = StreamPool::Create(
      {.threads = threads, .record_budget = budget});
  if (!pool.ok()) return fail(pool.status().ToString());

  mq::Cluster cluster;
  // Recent-snapshots-only topic: STATS fetches the newest entry.
  cluster.CreateTopic(mq::kStatsTopic, 1,
                      mq::RetentionOptions{/*max_messages=*/16, 0});

  pool::FanoutServer::Options fopt;
  fopt.cluster = &cluster;
  fopt.port = listen_port;
  pool::FanoutServer server(fopt);
  if (Status st = server.Start(); !st.ok())
    return fail(st.ToString());
  std::fprintf(stderr, "bgpfanout: listening on 127.0.0.1:%u\n",
               unsigned(server.port()));

  broker::Broker broker(archive, {});
  core::BrokerDataInterface di(&broker);
  auto stream = (*pool)->CreateStream({}, {.name = "publisher"});
  stream->SetInterval(window_start, window_end);
  stream->SetDataInterface(&di);
  if (Status st = stream->Start(); !st.ok()) return fail(st.ToString());

  pool::RecordPublisher::Options popt;
  popt.cluster = &cluster;
  popt.batch_records = batch_records;
  if (bounded) {
    // Published-but-unevicted batches count against the same record
    // budget as decode buffers, so a pinned lagging subscriber
    // backpressures publication. Only sound with bounded retention:
    // an unbounded log never evicts, and would wedge the ledger.
    popt.governor = (*pool)->governor();
    popt.topic_retention = retention;
  }

  Status publish_status = OkStatus();
  pool::RecordPublisher::Stats publish_stats;
  std::atomic<bool> published{false};
  std::thread publisher([&] {
    pool::RecordPublisher pub(popt);
    auto result = pub.Run(*stream);
    if (result.ok()) {
      publish_stats = *result;
    } else {
      publish_status = result.status();
    }
    published.store(true);
  });

  // Foreground loop: periodic stats snapshots until shutdown (signal,
  // or --once after the archive is fully published). 200ms ticks keep
  // both exits prompt.
  const long long ticks_per_snapshot = stats_interval * 5;
  long long tick = ticks_per_snapshot;  // publish one snapshot at startup
  while (g_signal == 0 && !(once && published.load())) {
    if (stats_interval > 0 && tick >= ticks_per_snapshot) {
      mq::Message m;
      std::string json = SnapshotJson((*pool)->Stats());
      m.value.assign(json.begin(), json.end());
      cluster.Publish(mq::kStatsTopic, 0, std::move(m));
      tick = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ++tick;
  }

  server.Stop();
  publisher.join();
  if (!publish_status.ok())
    std::fprintf(stderr, "bgpfanout: publish failed: %s\n",
                 publish_status.ToString().c_str());
  std::fprintf(stderr,
               "bgpfanout: published %llu records / %llu elems in %llu "
               "batches across %llu collectors; %zu connection(s) served\n",
               (unsigned long long)publish_stats.records_published,
               (unsigned long long)publish_stats.elems_published,
               (unsigned long long)publish_stats.batches_published,
               (unsigned long long)publish_stats.collectors_seen,
               server.connections_served());
  return publish_status.ok() ? 0 : 1;
}
