// bgplive — live ingestion driver (paper §7: OpenBMP / exabgp feeds).
//
// Replays an MRT archive (typically a bgpsim corpus) as a live BMP or
// exabgp session at an accelerated clock, ingests the wire traffic
// through a pool::LiveSource, and consumes the resulting record stream
// as a StreamPool deadline tenant — the full live path, end to end, in
// one process:
//     bgpsim generate -d /tmp/corpus --scenario mixed
//     bgplive -d /tmp/corpus --speedup 256
// Every record the tenant emits is byte-identical to decoding the
// archive directly; the live tier only changes *when* data arrives.
// Periodic StreamPool snapshots (one JSON object per line, same section
// names as bgpreader --pool-stats-json) go to stderr with --stats-interval.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/clock.hpp"
#include "pool/live_source.hpp"
#include "pool/stream_pool.hpp"
#include "sim/replay.hpp"

using namespace bgps;

namespace {

void Usage() {
  std::fputs(R"(usage: bgplive -d DIR [options]

source:
  -d DIR          MRT archive root to replay as a live session

replay:
  --format F      wire format: bmp (RFC 7854 frames) or exabgp
                  (v4 JSON lines) (default bmp)
  --speedup N     virtual seconds per wall second (default 64)
  --max-records N stop after N replayed messages (default 0 = all)
  --chunk-bytes N deliver BMP frames in N-byte chunks to exercise
                  partial-frame reassembly (default 0 = whole frames)

live source:
  --spool DIR     micro-dump spool directory
                  (default: <archive>/.bgplive-spool)
  --flush-records N
                  records per published micro-dump (default 64)

tenant:
  --threads N     pool decode worker threads (default 2)
  --budget N      shared record budget; the replay parks when the
                  ledger is full — live backpressure (default 4096)

output:
  --quiet         suppress per-record lines (summary only)
  --stats-interval S
                  seconds between pool stats JSON snapshots on stderr
                  (default 0 = off)
)",
             stderr);
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Same shape as bgpreader --pool-stats-json / bgpfanout's stats topic,
// so one scraper handles all three front ends.
std::string SnapshotJson(const StreamPool::Snapshot& snap) {
  std::string buf;
  buf += "{\"executor\":{\"threads\":" +
         std::to_string(snap.executor.threads) +
         ",\"tasks_run\":" + std::to_string(snap.executor.tasks_run) +
         ",\"dispatch_rounds\":" +
         std::to_string(snap.executor.dispatch_rounds) +
         ",\"tenants\":" + std::to_string(snap.executor.tenants) + "}";
  buf += ",\"governor\":{\"capacity\":" +
         std::to_string(snap.governor.capacity) +
         ",\"in_use\":" + std::to_string(snap.governor.in_use) +
         ",\"max_in_use\":" + std::to_string(snap.governor.max_in_use) +
         ",\"waiting\":" + std::to_string(snap.governor.waiting) + "}";
  buf += ",\"streams_created\":" + std::to_string(snap.streams_created);
  buf += ",\"tenants\":[";
  for (size_t i = 0; i < snap.tenants.size(); ++i) {
    const auto& t = snap.tenants[i];
    if (i > 0) buf += ",";
    buf += "{\"name\":\"" + JsonEscape(t.name) + "\"";
    buf += ",\"records_emitted\":" +
           std::to_string(t.stats.records_emitted);
    buf += ",\"records_buffered\":" +
           std::to_string(t.stats.records_buffered);
    buf += ",\"files_decoded\":" + std::to_string(t.stats.files_decoded) +
           "}";
  }
  buf += "]}";
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string archive;
  std::string spool;
  sim::ReplayFormat format = sim::ReplayFormat::Bmp;
  double speedup = 64.0;
  size_t max_records = 0;
  size_t chunk_bytes = 0;
  size_t flush_records = 64;
  size_t threads = 2;
  size_t budget = 4096;
  bool quiet = false;
  long long stats_interval = 0;

  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "bgplive: %s\n", msg.c_str());
    Usage();
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "-d") {
      const char* v = need_value();
      if (!v) return fail("-d needs a directory");
      archive = v;
    } else if (arg == "--format") {
      const char* v = need_value();
      if (!v) return fail("--format needs bmp or exabgp");
      if (std::strcmp(v, "bmp") == 0) {
        format = sim::ReplayFormat::Bmp;
      } else if (std::strcmp(v, "exabgp") == 0) {
        format = sim::ReplayFormat::ExaBgp;
      } else {
        return fail("--format must be bmp or exabgp");
      }
    } else if (arg == "--speedup") {
      const char* v = need_value();
      if (!v) return fail("--speedup needs a factor");
      speedup = std::strtod(v, nullptr);
      if (speedup <= 0) return fail("--speedup must be > 0");
    } else if (arg == "--max-records") {
      const char* v = need_value();
      if (!v) return fail("--max-records needs a count");
      max_records = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chunk-bytes") {
      const char* v = need_value();
      if (!v) return fail("--chunk-bytes needs a byte count");
      chunk_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--spool") {
      const char* v = need_value();
      if (!v) return fail("--spool needs a directory");
      spool = v;
    } else if (arg == "--flush-records") {
      const char* v = need_value();
      if (!v) return fail("--flush-records needs a count");
      flush_records = std::strtoull(v, nullptr, 10);
      if (flush_records == 0) return fail("--flush-records must be > 0");
    } else if (arg == "--threads") {
      const char* v = need_value();
      if (!v) return fail("--threads needs a count");
      threads = std::strtoull(v, nullptr, 10);
      if (threads == 0) return fail("--threads must be > 0");
    } else if (arg == "--budget") {
      const char* v = need_value();
      if (!v) return fail("--budget needs a record count");
      budget = std::strtoull(v, nullptr, 10);
      if (budget == 0) return fail("--budget must be > 0");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats-interval") {
      const char* v = need_value();
      if (!v) return fail("--stats-interval needs seconds");
      stats_interval = std::strtoll(v, nullptr, 10);
      if (stats_interval < 0) return fail("--stats-interval must be >= 0");
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      return fail("unknown option " + arg);
    }
  }

  if (archive.empty()) return fail("-d is required");
  if (spool.empty()) spool = archive + "/.bgplive-spool";

  auto pool = StreamPool::Create(
      {.threads = threads, .record_budget = budget});
  if (!pool.ok()) return fail(pool.status().ToString());

  pool::LiveSource::Options sopt;
  sopt.spool_dir = spool;
  sopt.flush_records = flush_records;
  sopt.governor = (*pool)->governor();
  sopt.executor = (*pool)->executor();
  auto source = pool::LiveSource::Create(std::move(sopt));
  if (!source.ok()) return fail(source.status().ToString());

  // The live tenant: a deadline-class stream polling the feed. The
  // 10 ms poll keeps record latency low without busy-waiting.
  core::BgpStream::Options topt;
  topt.poll_wait = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  auto stream = (*pool)->CreateStream(
      std::move(topt), {.weight = 4, .deadline = true, .name = "live"});
  stream->SetLive(0);
  stream->SetDataInterface((*source)->feed());
  if (Status st = stream->Start(); !st.ok()) return fail(st.ToString());

  // Session-reader thread: replay the archive as wire traffic into the
  // source. Backpressure (a full governor) blocks the Ingest call,
  // which pauses the replay — exactly what a TCP socket would do.
  Status replay_status = OkStatus();
  sim::ReplayStats replay_stats;
  std::thread session([&] {
    sim::ReplayOptions ropt;
    ropt.archive_root = archive;
    ropt.format = format;
    ropt.speedup = speedup;
    ropt.max_records = max_records;
    auto result = sim::ReplayArchive(
        ropt, [&](Timestamp, const Bytes& payload) -> Status {
          if (format == sim::ReplayFormat::Bmp) {
            if (chunk_bytes == 0) return (*source)->IngestBmp(payload);
            for (size_t off = 0; off < payload.size(); off += chunk_bytes) {
              size_t n = std::min(chunk_bytes, payload.size() - off);
              BGPS_RETURN_IF_ERROR((*source)->IngestBmp(
                  std::span<const uint8_t>(payload.data() + off, n)));
            }
            return OkStatus();
          }
          return (*source)->IngestExaBgpLine(
              std::string(payload.begin(), payload.end()));
        });
    if (result.ok()) {
      replay_stats = *result;
    } else {
      replay_status = result.status();
    }
    if (Status st = (*source)->Close(); !st.ok() && replay_status.ok())
      replay_status = st;
  });

  // Optional stats ticker, one JSON object per line on stderr.
  std::atomic<bool> done{false};
  std::thread ticker;
  if (stats_interval > 0) {
    ticker = std::thread([&] {
      long long tick = 0;
      while (!done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (++tick >= stats_interval * 5) {
          std::fprintf(stderr, "%s\n",
                       SnapshotJson((*pool)->Stats()).c_str());
          tick = 0;
        }
      }
    });
  }

  // Consumer loop: the live tenant's records, printed like a monitor.
  size_t records = 0, elems = 0;
  while (auto rec = stream->NextRecord()) {
    ++records;
    size_t n = stream->Elems(*rec).size();
    elems += n;
    if (!quiet)
      std::printf("%lld|%s|%s|%zu\n", (long long)rec->timestamp,
                  rec->project.c_str(), rec->collector.c_str(), n);
  }
  session.join();
  done.store(true);
  if (ticker.joinable()) ticker.join();

  if (!replay_status.ok())
    std::fprintf(stderr, "bgplive: replay failed: %s\n",
                 replay_status.ToString().c_str());
  if (!stream->status().ok())
    std::fprintf(stderr, "bgplive: stream failed: %s\n",
                 stream->status().ToString().c_str());

  auto sstats = (*source)->stats();
  std::fprintf(stderr,
               "bgplive: replayed %zu messages (%zu updates, %zu state "
               "changes, %zu skipped); ingested %zu, %zu corrupt, %zu "
               "parks; %zu micro-dumps; consumed %zu records / %zu "
               "elems\n",
               replay_stats.records_replayed, replay_stats.updates,
               replay_stats.state_changes, replay_stats.skipped,
               sstats.messages_decoded, sstats.corrupt_frames, sstats.parks,
               sstats.dumps_published, records, elems);
  return replay_status.ok() && stream->status().ok() ? 0 : 1;
}
