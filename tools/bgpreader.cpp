// bgpreader — command-line BGP dump reader (paper §4.1).
//
// The drop-in bgpdump replacement: reads a local archive through the
// Broker (or a single MRT file), applies meta/data filters, and prints
// elems as ASCII. The paper's example
//     bgpreader -w 1463011200 -t updates -k 192.0.0.0/8
// becomes
//     bgpreader -d <archive> -w 1463011200 -t updates -k 192.0.0.0/8
// (the data source is a directory here instead of the hosted broker; an
// omitted window end means live mode, §3.3.1).
//
// --pool-threads / --pool-budget route the stream through a
// bgps::StreamPool — the same shared decode runtime a multi-tenant
// service would use — instead of a private synchronous pipeline.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/stream.hpp"
#include "pool/stream_pool.hpp"
#include "reader/ascii.hpp"

using namespace bgps;

namespace {

void Usage() {
  // fputs, not fprintf: the usage text contains literal '%' characters
  // (AS-path patterns) that must not be interpreted as conversions.
  std::fputs(R"(usage: bgpreader -d ARCHIVE|-f FILE -w START[,END] [options]

data source (one required):
  -d DIR        archive root (RouteViews/RIS-style layout, via the Broker)
  -f FILE       single MRT dump file

stream definition:
  -w START[,END]  UNIX-time window; omit END for live mode
  -t TYPE         ribs | updates (repeatable)
  -P PROJECT      project filter (repeatable)
  -c COLLECTOR    collector filter (repeatable)

elem filters (repeatable):
  -k PREFIX       any-overlap prefix filter, e.g. 192.0.0.0/8
  -K MODE,PREFIX  prefix filter with mode exact|more|less|any
  -j ASN          peer ASN filter
  -y COMM         community filter, e.g. 65535:666 or *:666
  -A PATTERN      AS-path pattern, e.g. '% 3356 %' or '^65001 % 15169$'
  -i 4|6          IP version
  -e TYPE         elemtype: ribs|announcements|withdrawals|peerstates

performance (shared decode runtime):
  --pool-threads N  decode through a StreamPool with N shared workers
                    (the multi-tenant runtime; implies prefetching)
  --pool-budget N   global cap on records buffered in RAM by chunked
                    decode (default 4096; implies --pool-threads 4)

output:
  -m              bgpdump -m compatible output
  -r              also print one line per record
  -n N            stop after N elems
)",
             stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string archive, file;
  std::vector<std::pair<std::string, std::string>> filters;
  reader::BgpReaderOptions out_options;
  bool have_window = false;
  Timestamp start = 0, end = kLiveEnd;
  size_t pool_threads = 0, pool_budget = 0;

  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "bgpreader: %s\n", msg.c_str());
    Usage();
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "-d") {
      const char* v = need_value();
      if (!v) return fail("-d needs a directory");
      archive = v;
    } else if (arg == "-f") {
      const char* v = need_value();
      if (!v) return fail("-f needs a file");
      file = v;
    } else if (arg == "-w") {
      const char* v = need_value();
      if (!v) return fail("-w needs START[,END]");
      char* rest = nullptr;
      start = std::strtoll(v, &rest, 10);
      if (rest && *rest == ',') {
        end = std::strtoll(rest + 1, nullptr, 10);
      }
      have_window = true;
    } else if (arg == "-t") {
      const char* v = need_value();
      if (!v) return fail("-t needs a type");
      filters.emplace_back("type", v);
    } else if (arg == "-P") {
      const char* v = need_value();
      if (!v) return fail("-P needs a project");
      filters.emplace_back("project", v);
    } else if (arg == "-c") {
      const char* v = need_value();
      if (!v) return fail("-c needs a collector");
      filters.emplace_back("collector", v);
    } else if (arg == "-k") {
      const char* v = need_value();
      if (!v) return fail("-k needs a prefix");
      filters.emplace_back("prefix", std::string("any ") + v);
    } else if (arg == "-K") {
      const char* v = need_value();
      if (!v) return fail("-K needs MODE,PREFIX");
      std::string s = v;
      size_t comma = s.find(',');
      if (comma == std::string::npos) return fail("-K needs MODE,PREFIX");
      filters.emplace_back("prefix",
                           s.substr(0, comma) + " " + s.substr(comma + 1));
    } else if (arg == "-j") {
      const char* v = need_value();
      if (!v) return fail("-j needs an ASN");
      filters.emplace_back("peer", v);
    } else if (arg == "-y") {
      const char* v = need_value();
      if (!v) return fail("-y needs a community");
      filters.emplace_back("community", v);
    } else if (arg == "-A") {
      const char* v = need_value();
      if (!v) return fail("-A needs a pattern");
      filters.emplace_back("aspath", v);
    } else if (arg == "-i") {
      const char* v = need_value();
      if (!v) return fail("-i needs 4 or 6");
      filters.emplace_back("ipversion", v);
    } else if (arg == "-e") {
      const char* v = need_value();
      if (!v) return fail("-e needs an elemtype");
      filters.emplace_back("elemtype", v);
    } else if (arg == "--pool-threads") {
      const char* v = need_value();
      if (!v) return fail("--pool-threads needs a count");
      pool_threads = size_t(std::strtoull(v, nullptr, 10));
      if (pool_threads == 0) return fail("--pool-threads must be > 0");
    } else if (arg == "--pool-budget") {
      const char* v = need_value();
      if (!v) return fail("--pool-budget needs a record count");
      pool_budget = size_t(std::strtoull(v, nullptr, 10));
      if (pool_budget == 0) return fail("--pool-budget must be > 0");
    } else if (arg == "-m") {
      out_options.format = reader::OutputFormat::Bgpdump;
    } else if (arg == "-r") {
      out_options.show_records = true;
    } else if (arg == "-n") {
      const char* v = need_value();
      if (!v) return fail("-n needs a count");
      out_options.max_elems = size_t(std::strtoull(v, nullptr, 10));
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      return fail("unknown option " + arg);
    }
  }

  if (archive.empty() == file.empty())
    return fail("exactly one of -d / -f is required");
  if (!have_window && file.empty()) return fail("-w is required with -d");

  // The shared decode runtime: either pool flag routes the stream
  // through a StreamPool (threads default 4, budget default 4096).
  std::unique_ptr<StreamPool> pool;
  std::unique_ptr<core::BgpStream> stream;
  if (pool_threads > 0 || pool_budget > 0) {
    StreamPool::Options popt;
    if (pool_threads > 0) popt.threads = pool_threads;
    if (pool_budget > 0) popt.record_budget = pool_budget;
    auto created = StreamPool::Create(popt);
    if (!created.ok()) return fail(created.status().ToString());
    pool = std::move(*created);
    stream = pool->CreateStream();
  } else {
    stream = std::make_unique<core::BgpStream>();
  }

  for (const auto& [key, value] : filters) {
    if (Status st = stream->AddFilter(key, value); !st.ok())
      return fail(st.ToString());
  }

  std::unique_ptr<broker::Broker> broker;
  std::unique_ptr<core::DataInterface> di;
  if (!archive.empty()) {
    broker = std::make_unique<broker::Broker>(archive);
    di = std::make_unique<core::BrokerDataInterface>(broker.get());
    stream->SetInterval(start, end);
  } else {
    di = std::make_unique<core::SingleFileInterface>(file,
                                                     core::DumpType::Updates);
    if (have_window) {
      stream->SetInterval(start, end == kLiveEnd ? 4102444800 : end);
    } else {
      stream->SetInterval(0, 4102444800);
    }
  }
  stream->SetDataInterface(di.get());
  if (Status st = stream->Start(); !st.ok()) return fail(st.ToString());

  size_t printed = reader::RunBgpReader(*stream, std::cout, out_options);
  if (!stream->status().ok()) {
    std::fprintf(stderr, "bgpreader: stream error: %s\n",
                 stream->status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "bgpreader: %zu elems from %zu records\n", printed,
               stream->records_emitted());
  return 0;
}
