// bgpreader — command-line BGP dump reader (paper §4.1).
//
// The drop-in bgpdump replacement: reads a local archive through the
// Broker (or a single MRT file), applies meta/data filters, and prints
// elems as ASCII. The paper's example
//     bgpreader -w 1463011200 -t updates -k 192.0.0.0/8
// becomes
//     bgpreader -d <archive> -w 1463011200 -t updates -k 192.0.0.0/8
// (the data source is a directory here instead of the hosted broker; an
// omitted window end means live mode, §3.3.1).
//
// --pool-threads routes the stream through a bgps::StreamPool — the
// same shared decode runtime a multi-tenant service would use — instead
// of a private synchronous pipeline; --pool-budget / --pool-weight /
// --pool-deadline / --pool-stats-interval / --pool-stats-json /
// --pool-stats-file tune and introspect it (and require --pool-threads:
// they have no meaning without the pool).
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/stream.hpp"
#include "pool/stream_pool.hpp"
#include "reader/ascii.hpp"

using namespace bgps;

namespace {

void Usage() {
  // fputs, not fprintf: the usage text contains literal '%' characters
  // (AS-path patterns) that must not be interpreted as conversions.
  std::fputs(R"(usage: bgpreader -d ARCHIVE|-f FILE -w START[,END] [options]

data source (one required):
  -d DIR        archive root (RouteViews/RIS-style layout, via the Broker)
  -f FILE       single MRT dump file

stream definition:
  -w START[,END]  UNIX-time window; omit END for live mode
  -t TYPE         ribs | updates (repeatable)
  -P PROJECT      project filter (repeatable)
  -c COLLECTOR    collector filter (repeatable)

elem filters (repeatable):
  -k PREFIX       any-overlap prefix filter, e.g. 192.0.0.0/8
  -K MODE,PREFIX  prefix filter with mode exact|more|less|any
  -j ASN          peer ASN filter
  -y COMM         community filter, e.g. 65535:666 or *:666
  -A PATTERN      AS-path pattern, e.g. '% 3356 %' or '^65001 % 15169$'
  -i 4|6          IP version
  -e TYPE         elemtype: ribs|announcements|withdrawals|peerstates

performance (shared decode runtime; all but --pool-threads require it):
  --pool-threads N         decode through a StreamPool with N shared
                           workers (the multi-tenant runtime; implies
                           prefetching)
  --pool-budget N          global cap on records buffered in RAM by
                           chunked decode (default 4096)
  --pool-weight N          scheduling weight of this stream's tenant
                           queue (default 1; higher = more decode tasks
                           per dispatch visit)
  --pool-deadline          join the deadline class of this weight:
                           decode tasks dispatch earliest-enqueued-first
                           across same-weight deadline tenants (live
                           monitors; output is identical either way)
  --pool-stats-interval S  dump a StreamPool stats snapshot to stderr
                           every S seconds (fractions allowed) and once
                           at the end
  --pool-stats-json        emit stats snapshots as one JSON object per
                           line (machine-scrapable) instead of the
                           human-readable [pool] lines; also dumps a
                           final snapshot even without an interval
  --pool-stats-file PATH   write the stats snapshots to PATH (always the
                           one-JSON-object-per-line form) instead of
                           stderr, so snapshots never interleave with
                           diagnostics; also dumps a final snapshot even
                           without an interval

output:
  -m              bgpdump -m compatible output
  -r              also print one line per record
  -n N            stop after N elems
)",
             stderr);
}

// Minimal JSON string escaping (quotes, backslashes, control chars) for
// tenant names in the --pool-stats-json output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One stats snapshot to `out` (stderr, or the --pool-stats-file sink):
// human-readable lines prefixed "[pool]", or (json) exactly one JSON
// object per snapshot on one line — the machine-scrapable form
// documented in docs/OPERATIONS.md. Flushed per snapshot so a live
// scraper tailing the file sees whole lines promptly.
void DumpPoolStats(const StreamPool& pool, bool json, std::FILE* out) {
  StreamPool::Snapshot snap = pool.Stats();
  if (json) {
    std::string buf;
    buf += "{\"executor\":{\"threads\":" +
           std::to_string(snap.executor.threads) +
           ",\"tasks_run\":" + std::to_string(snap.executor.tasks_run) +
           ",\"dispatch_rounds\":" +
           std::to_string(snap.executor.dispatch_rounds) +
           ",\"tenants\":" + std::to_string(snap.executor.tenants) + "}";
    buf += ",\"governor\":{\"capacity\":" +
           std::to_string(snap.governor.capacity) +
           ",\"in_use\":" + std::to_string(snap.governor.in_use) +
           ",\"max_in_use\":" + std::to_string(snap.governor.max_in_use) +
           ",\"waiting\":" + std::to_string(snap.governor.waiting) + "}";
    buf += ",\"streams_created\":" + std::to_string(snap.streams_created);
    buf += ",\"tenants\":[";
    for (size_t i = 0; i < snap.tenants.size(); ++i) {
      const auto& t = snap.tenants[i];
      if (i > 0) buf += ",";
      buf += "{\"name\":\"" + JsonEscape(t.name) + "\"";
      buf += ",\"weight\":" + std::to_string(t.weight);
      buf += std::string(",\"deadline\":") + (t.deadline ? "true" : "false");
      buf += ",\"queue_depth\":" + std::to_string(t.stats.queue_depth);
      buf += ",\"tasks_executed\":" + std::to_string(t.stats.tasks_executed);
      buf += ",\"files_decoded\":" + std::to_string(t.stats.files_decoded);
      buf +=
          ",\"records_buffered\":" + std::to_string(t.stats.records_buffered);
      buf += ",\"records_emitted\":" + std::to_string(t.stats.records_emitted);
      buf += ",\"reclaims\":" + std::to_string(t.stats.reclaims) + "}";
    }
    buf += "]}\n";
    std::fputs(buf.c_str(), out);
    std::fflush(out);
    return;
  }
  std::fprintf(out,
               "[pool] executor threads=%zu tasks_run=%zu rounds=%zu | "
               "governor in_use=%zu/%zu max=%zu waiting=%zu | streams=%zu\n",
               snap.executor.threads, snap.executor.tasks_run,
               snap.executor.dispatch_rounds, snap.governor.in_use,
               snap.governor.capacity, snap.governor.max_in_use,
               snap.governor.waiting, snap.streams_created);
  for (const auto& t : snap.tenants) {
    std::fprintf(out,
                 "[pool]   tenant %s weight=%zu%s queue=%zu tasks=%zu "
                 "files=%zu buffered=%zu emitted=%zu reclaims=%zu\n",
                 t.name.c_str(), t.weight, t.deadline ? " deadline" : "",
                 t.stats.queue_depth, t.stats.tasks_executed,
                 t.stats.files_decoded, t.stats.records_buffered,
                 t.stats.records_emitted, t.stats.reclaims);
  }
  std::fflush(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string archive, file;
  std::vector<std::pair<std::string, std::string>> filters;
  reader::BgpReaderOptions out_options;
  bool have_window = false;
  Timestamp start = 0, end = kLiveEnd;
  size_t pool_threads = 0, pool_budget = 0, pool_weight = 0;
  bool pool_deadline = false, pool_stats_json = false;
  double pool_stats_interval = 0.0;
  std::string pool_stats_file;

  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "bgpreader: %s\n", msg.c_str());
    Usage();
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "-d") {
      const char* v = need_value();
      if (!v) return fail("-d needs a directory");
      archive = v;
    } else if (arg == "-f") {
      const char* v = need_value();
      if (!v) return fail("-f needs a file");
      file = v;
    } else if (arg == "-w") {
      const char* v = need_value();
      if (!v) return fail("-w needs START[,END]");
      char* rest = nullptr;
      start = std::strtoll(v, &rest, 10);
      if (rest && *rest == ',') {
        end = std::strtoll(rest + 1, nullptr, 10);
      }
      have_window = true;
    } else if (arg == "-t") {
      const char* v = need_value();
      if (!v) return fail("-t needs a type");
      filters.emplace_back("type", v);
    } else if (arg == "-P") {
      const char* v = need_value();
      if (!v) return fail("-P needs a project");
      filters.emplace_back("project", v);
    } else if (arg == "-c") {
      const char* v = need_value();
      if (!v) return fail("-c needs a collector");
      filters.emplace_back("collector", v);
    } else if (arg == "-k") {
      const char* v = need_value();
      if (!v) return fail("-k needs a prefix");
      filters.emplace_back("prefix", std::string("any ") + v);
    } else if (arg == "-K") {
      const char* v = need_value();
      if (!v) return fail("-K needs MODE,PREFIX");
      std::string s = v;
      size_t comma = s.find(',');
      if (comma == std::string::npos) return fail("-K needs MODE,PREFIX");
      filters.emplace_back("prefix",
                           s.substr(0, comma) + " " + s.substr(comma + 1));
    } else if (arg == "-j") {
      const char* v = need_value();
      if (!v) return fail("-j needs an ASN");
      filters.emplace_back("peer", v);
    } else if (arg == "-y") {
      const char* v = need_value();
      if (!v) return fail("-y needs a community");
      filters.emplace_back("community", v);
    } else if (arg == "-A") {
      const char* v = need_value();
      if (!v) return fail("-A needs a pattern");
      filters.emplace_back("aspath", v);
    } else if (arg == "-i") {
      const char* v = need_value();
      if (!v) return fail("-i needs 4 or 6");
      filters.emplace_back("ipversion", v);
    } else if (arg == "-e") {
      const char* v = need_value();
      if (!v) return fail("-e needs an elemtype");
      filters.emplace_back("elemtype", v);
    } else if (arg == "--pool-threads") {
      const char* v = need_value();
      if (!v) return fail("--pool-threads needs a count");
      pool_threads = size_t(std::strtoull(v, nullptr, 10));
      if (pool_threads == 0) return fail("--pool-threads must be > 0");
    } else if (arg == "--pool-budget") {
      const char* v = need_value();
      if (!v) return fail("--pool-budget needs a record count");
      pool_budget = size_t(std::strtoull(v, nullptr, 10));
      if (pool_budget == 0) return fail("--pool-budget must be > 0");
    } else if (arg == "--pool-weight") {
      const char* v = need_value();
      if (!v) return fail("--pool-weight needs a weight");
      pool_weight = size_t(std::strtoull(v, nullptr, 10));
      if (pool_weight == 0) return fail("--pool-weight must be >= 1");
    } else if (arg == "--pool-deadline") {
      pool_deadline = true;
    } else if (arg == "--pool-stats-json") {
      pool_stats_json = true;
    } else if (arg == "--pool-stats-file") {
      const char* v = need_value();
      if (!v) return fail("--pool-stats-file needs a path");
      pool_stats_file = v;
    } else if (arg == "--pool-stats-interval") {
      const char* v = need_value();
      if (!v) return fail("--pool-stats-interval needs seconds");
      pool_stats_interval = std::strtod(v, nullptr);
      if (pool_stats_interval <= 0.0)
        return fail("--pool-stats-interval must be > 0 seconds");
    } else if (arg == "-m") {
      out_options.format = reader::OutputFormat::Bgpdump;
    } else if (arg == "-r") {
      out_options.show_records = true;
    } else if (arg == "-n") {
      const char* v = need_value();
      if (!v) return fail("-n needs a count");
      out_options.max_elems = size_t(std::strtoull(v, nullptr, 10));
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      return fail("unknown option " + arg);
    }
  }

  // The pool tuning/introspection flags are meaningless without the
  // shared decode runtime — fail loudly rather than silently running a
  // private pipeline the flags never touch.
  if (pool_threads == 0) {
    if (pool_budget > 0)
      return fail("--pool-budget requires --pool-threads (the shared "
                  "decode runtime is enabled by --pool-threads N)");
    if (pool_weight > 0)
      return fail("--pool-weight requires --pool-threads (the shared "
                  "decode runtime is enabled by --pool-threads N)");
    if (pool_deadline)
      return fail("--pool-deadline requires --pool-threads (the shared "
                  "decode runtime is enabled by --pool-threads N)");
    if (pool_stats_interval > 0.0)
      return fail("--pool-stats-interval requires --pool-threads (the "
                  "shared decode runtime is enabled by --pool-threads N)");
    if (pool_stats_json)
      return fail("--pool-stats-json requires --pool-threads (the shared "
                  "decode runtime is enabled by --pool-threads N)");
    if (!pool_stats_file.empty())
      return fail("--pool-stats-file requires --pool-threads (the shared "
                  "decode runtime is enabled by --pool-threads N)");
  }

  if (archive.empty() == file.empty())
    return fail("exactly one of -d / -f is required");
  if (!have_window && file.empty()) return fail("-w is required with -d");

  // The shared decode runtime: --pool-threads routes the stream through
  // a StreamPool (budget default 4096, weight default 1).
  std::unique_ptr<StreamPool> pool;
  std::unique_ptr<core::BgpStream> stream;
  if (pool_threads > 0) {
    StreamPool::Options popt;
    popt.threads = pool_threads;
    if (pool_budget > 0) popt.record_budget = pool_budget;
    auto created = StreamPool::Create(popt);
    if (!created.ok()) return fail(created.status().ToString());
    pool = std::move(*created);
    StreamPool::TenantOptions topt;
    topt.weight = pool_weight > 0 ? pool_weight : 1;
    topt.deadline = pool_deadline;
    topt.name = "cli";
    stream = pool->CreateStream({}, std::move(topt));
  } else {
    stream = std::make_unique<core::BgpStream>();
  }

  for (const auto& [key, value] : filters) {
    if (Status st = stream->AddFilter(key, value); !st.ok())
      return fail(st.ToString());
  }

  std::unique_ptr<broker::Broker> broker;
  std::unique_ptr<core::DataInterface> di;
  if (!archive.empty()) {
    broker = std::make_unique<broker::Broker>(archive);
    di = std::make_unique<core::BrokerDataInterface>(broker.get());
    stream->SetInterval(start, end);
  } else {
    di = std::make_unique<core::SingleFileInterface>(file,
                                                     core::DumpType::Updates);
    if (have_window) {
      stream->SetInterval(start, end == kLiveEnd ? 4102444800 : end);
    } else {
      stream->SetInterval(0, 4102444800);
    }
  }
  stream->SetDataInterface(di.get());
  if (Status st = stream->Start(); !st.ok()) return fail(st.ToString());

  // Stats sink: stderr by default; --pool-stats-file redirects the
  // snapshots (always JSON there) to their own stream, so a scraper
  // never has to pick JSON lines out of interleaved diagnostics.
  std::FILE* stats_file = nullptr;
  if (!pool_stats_file.empty()) {
    stats_file = std::fopen(pool_stats_file.c_str(), "w");
    if (!stats_file)
      return fail("cannot open --pool-stats-file " + pool_stats_file);
  }
  std::FILE* stats_out = stats_file ? stats_file : stderr;
  bool stats_json = pool_stats_json || stats_file != nullptr;

  // Periodic introspection dump while the stream runs.
  std::thread stats_thread;
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_done = false;
  if (pool && pool_stats_interval > 0.0) {
    auto interval = std::chrono::duration<double>(pool_stats_interval);
    stats_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(stats_mu);
      while (!stats_cv.wait_for(lock, interval, [&] { return stats_done; })) {
        DumpPoolStats(*pool, stats_json, stats_out);
      }
    });
  }

  size_t printed = reader::RunBgpReader(*stream, std::cout, out_options);

  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats_done = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
    // final snapshot after the drain
    DumpPoolStats(*pool, stats_json, stats_out);
  } else if (pool && (pool_stats_json || stats_file)) {
    // JSON sink without an interval: one final snapshot, so a scraper
    // always gets at least one object per run.
    DumpPoolStats(*pool, stats_json, stats_out);
  }
  if (stats_file) std::fclose(stats_file);

  if (!stream->status().ok()) {
    std::fprintf(stderr, "bgpreader: stream error: %s\n",
                 stream->status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "bgpreader: %zu elems from %zu records\n", printed,
               stream->records_emitted());
  return 0;
}
