// bgpsim — scenario-driven MRT archive generator.
//
// Runs the discrete-event simulator (sim/corpus.hpp) for a named
// scenario and leaves a RouteViews/RIS-style archive of real MRT files
// on disk, ready for bgpreader / the Broker / the StreamPool:
//     bgpsim -o /tmp/archive -s hijack --seed 7
//     bgpreader -d /tmp/archive -w 1451606400,1451613600
// Generation is deterministic: the same seed and knobs reproduce the
// archive byte for byte (the property the round-trip tests pin down).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/corpus.hpp"

using namespace bgps;

namespace {

void Usage() {
  std::fputs(R"(usage: bgpsim -o DIR [options]

output:
  -o DIR          archive root to (re)generate; wiped first

scenario:
  -s NAME         scenario (default: mixed); one of
                  baseline | flap | hijack | leak | outage |
                  reset-storm | rtbh | mixed
  --list          print the scenario names and exit
  --seed N        RNG seed (default 1); same seed and knobs reproduce
                  the archive byte for byte
  --start T       UNIX-time start of the simulated window
                  (default 1451606400 = 2016-01-01T00:00:00Z)
  --duration S    simulated seconds (default 7200)
  --flaps-per-hour N
                  background churn rate across the table (default 2000)

scale:
  --rv N          RouteViews-style collectors: 2h RIBs, 15min updates
                  (default 1)
  --ris N         RIS-style collectors: 8h RIBs, 5min updates, state
                  messages (default 1)
  --vps N         vantage points per collector (default 5)
  --transits N    transit ASes in the topology (default 12)
  --stubs N       stub ASes in the topology (default 40)

encoding:
  --two-byte-asn  write BGP4MP MESSAGE/STATE_CHANGE records with 2-byte
                  ASNs (wider ASNs become AS_TRANS 23456) instead of the
                  default _AS4 subtypes; RIB attributes stay 4-byte per
                  RFC 6396
)",
             stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  sim::CorpusOptions options;
  options.start = 1451606400;

  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "bgpsim: %s\n", msg.c_str());
    Usage();
    return 1;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "-o") {
      const char* v = need_value();
      if (!v) return fail("-o needs a directory");
      out_dir = v;
    } else if (arg == "-s") {
      const char* v = need_value();
      if (!v) return fail("-s needs a scenario name");
      options.scenario = v;
    } else if (arg == "--list") {
      for (const auto& n : sim::CorpusScenarioNames())
        std::printf("%s\n", n.c_str());
      return 0;
    } else if (arg == "--seed") {
      const char* v = need_value();
      if (!v) return fail("--seed needs a number");
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--start") {
      const char* v = need_value();
      if (!v) return fail("--start needs a UNIX time");
      options.start = std::strtoll(v, nullptr, 10);
      if (options.start <= 0) return fail("--start must be > 0");
    } else if (arg == "--duration") {
      const char* v = need_value();
      if (!v) return fail("--duration needs seconds");
      options.duration = std::strtoll(v, nullptr, 10);
      if (options.duration <= 0) return fail("--duration must be > 0");
    } else if (arg == "--flaps-per-hour") {
      const char* v = need_value();
      if (!v) return fail("--flaps-per-hour needs a rate");
      options.flaps_per_hour = std::strtod(v, nullptr);
      if (options.flaps_per_hour < 0)
        return fail("--flaps-per-hour must be >= 0");
    } else if (arg == "--rv") {
      const char* v = need_value();
      if (!v) return fail("--rv needs a count");
      options.rv_collectors = std::atoi(v);
    } else if (arg == "--ris") {
      const char* v = need_value();
      if (!v) return fail("--ris needs a count");
      options.ris_collectors = std::atoi(v);
    } else if (arg == "--vps") {
      const char* v = need_value();
      if (!v) return fail("--vps needs a count");
      options.vps_per_collector = std::atoi(v);
      if (options.vps_per_collector <= 0) return fail("--vps must be > 0");
    } else if (arg == "--transits") {
      const char* v = need_value();
      if (!v) return fail("--transits needs a count");
      options.topo.num_transit = std::atoi(v);
      if (options.topo.num_transit <= 0) return fail("--transits must be > 0");
    } else if (arg == "--stubs") {
      const char* v = need_value();
      if (!v) return fail("--stubs needs a count");
      options.topo.num_stub = std::atoi(v);
      if (options.topo.num_stub <= 0) return fail("--stubs must be > 0");
    } else if (arg == "--two-byte-asn") {
      options.asn_encoding = bgp::AsnEncoding::TwoByte;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else {
      return fail("unknown option " + arg);
    }
  }

  if (out_dir.empty()) return fail("-o is required");
  if (options.rv_collectors + options.ris_collectors <= 0)
    return fail("need at least one collector (--rv / --ris)");

  auto stats = sim::GenerateCorpus(options, out_dir);
  if (!stats.ok()) return fail(stats.status().ToString());

  std::fprintf(stderr,
               "bgpsim: %s scenario, window [%lld, %lld): %zu MRT files "
               "(%zu RIB dumps, %zu updates dumps, %zu update messages) "
               "in %s\n",
               options.scenario.c_str(), (long long)stats->start,
               (long long)stats->end, stats->files, stats->rib_dumps,
               stats->updates_dumps, stats->update_messages, out_dir.c_str());
  return 0;
}
